package experiments

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// sharedEnv builds one small environment for the whole test file
// (setup trains a model, so reuse keeps the suite fast).
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = Setup(SmallConfig())
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func cell(t *testing.T, table *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(table.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q is not numeric: %v", row, col, table.Rows[row][col], err)
	}
	return v
}

func TestSetupValidation(t *testing.T) {
	cfg := SmallConfig()
	cfg.Scale = 0
	if _, err := Setup(cfg); err == nil {
		t.Error("zero scale must fail")
	}
}

func TestSetupShapes(t *testing.T) {
	env := testEnv(t)
	if env.Testbed.Len() != 20 {
		t.Errorf("testbed has %d databases, want 20", env.Testbed.Len())
	}
	if len(env.Train) != 300 || len(env.Test) != 120 {
		t.Errorf("query sets %d/%d", len(env.Train), len(env.Test))
	}
	if len(env.Golden) != len(env.Test) {
		t.Errorf("golden %d entries for %d test queries", len(env.Golden), len(env.Test))
	}
}

func TestFigure14(t *testing.T) {
	env := testEnv(t)
	table := Figure14(env)
	if len(table.Rows) != 20 {
		t.Fatalf("F14 rows = %d, want 20", len(table.Rows))
	}
	categories := map[string]int{}
	for _, row := range table.Rows {
		categories[row[1]]++
	}
	if categories["health"] != 13 || categories["science"] != 4 || categories["news"] != 3 {
		t.Errorf("category mix %v", categories)
	}
	if !strings.Contains(table.String(), "MedWeb") {
		t.Error("table rendering lost the database names")
	}
	if !strings.Contains(table.CSV(), "database,category") {
		t.Error("CSV rendering missing header")
	}
}

func TestFigure9(t *testing.T) {
	env := testEnv(t)
	table, err := Figure9(env, "OncoLink")
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) == 0 {
		t.Fatal("F9 has no rows")
	}
	// Each row's three probability cells must sum to ≈ 1.
	for ri := range table.Rows {
		sum := cell(t, table, ri, 3) + cell(t, table, ri, 4) + cell(t, table, ri, 5)
		if sum < 0.98 || sum > 1.02 {
			t.Errorf("row %d probabilities sum to %v", ri, sum)
		}
	}
	if _, err := Figure9(env, "NoSuchDB"); err == nil {
		t.Error("unknown database must fail")
	}
}

// TestFigure15Shape asserts the paper's headline shape: RD-based
// selection is at least as correct as the baseline in every cell.
func TestFigure15Shape(t *testing.T) {
	env := testEnv(t)
	table, err := Figure15(env, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("F15 rows = %d", len(table.Rows))
	}
	for pair := 0; pair < 2; pair++ {
		baseA := cell(t, table, 2*pair, 2)
		rdA := cell(t, table, 2*pair+1, 2)
		baseP := cell(t, table, 2*pair, 3)
		rdP := cell(t, table, 2*pair+1, 3)
		if rdA < baseA {
			t.Errorf("k-pair %d: RD CorA %v below baseline %v", pair, rdA, baseA)
		}
		if rdP < baseP {
			t.Errorf("k-pair %d: RD CorP %v below baseline %v", pair, rdP, baseP)
		}
	}
	// At k=1 the improvement should be clearly visible, as in the paper.
	if cell(t, table, 1, 2) <= cell(t, table, 0, 2) {
		t.Errorf("k=1: no strict improvement (baseline %v, RD %v)", cell(t, table, 0, 2), cell(t, table, 1, 2))
	}
}

// TestFigure16Shape asserts monotone-ish improvement with probes and
// agreement between the zero-probe point and RD-based selection.
func TestFigure16Shape(t *testing.T) {
	env := testEnv(t)
	const maxProbes = 4
	table, err := Figure16(env, maxProbes)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("F16 rows = %d, want 6 (3 panels × APro/baseline)", len(table.Rows))
	}
	for ri := 0; ri < len(table.Rows); ri += 2 {
		apro := table.Rows[ri]
		base := table.Rows[ri+1]
		first := cell(t, table, ri, 1)
		last := cell(t, table, ri, maxProbes+1)
		if last < first {
			t.Errorf("series %q decreases overall: %v → %v", apro[0], first, last)
		}
		// Probing must help substantially by the end.
		if last <= cell(t, table, ri+1, 1) {
			t.Errorf("series %q never beats its baseline", apro[0])
		}
		// The baseline row must be flat.
		for c := 2; c <= maxProbes+1; c++ {
			if base[c] != base[1] {
				t.Errorf("baseline row %q not flat", base[0])
			}
		}
		// Mild monotonicity: each step may dip only by noise.
		for c := 2; c <= maxProbes+1; c++ {
			if cell(t, table, ri, c) < cell(t, table, ri, c-1)-0.05 {
				t.Errorf("series %q drops at probe %d", apro[0], c-1)
			}
		}
	}
}

// TestFigure17Shape asserts probes grow with the threshold.
func TestFigure17Shape(t *testing.T) {
	env := testEnv(t)
	thresholds := []float64{0.7, 0.8, 0.9}
	table, err := Figure17(env, thresholds)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("F17 rows = %d", len(table.Rows))
	}
	for ri := range table.Rows {
		lo := cell(t, table, ri, 1)
		hi := cell(t, table, ri, len(thresholds))
		if hi < lo-0.01 {
			t.Errorf("series %q: probes decreased with t (%v → %v)", table.Rows[ri][0], lo, hi)
		}
	}
}

func TestSamplingStudyShapes(t *testing.T) {
	perDB, avg, err := SamplingStudy(SmallSamplingConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(perDB.Rows) != 3 {
		t.Fatalf("F7 rows = %d, want ShowDBs=3", len(perDB.Rows))
	}
	if len(avg.Rows) != 1 {
		t.Fatalf("F8 rows = %d", len(avg.Rows))
	}
	// The paper's observation: goodness well above the 0.05 acceptance
	// line for all sizes.
	for c := 1; c < len(avg.Columns); c++ {
		if avg.Rows[0][c] == "n/a" {
			continue
		}
		v := cell(t, avg, 0, c)
		if v < 0.05 {
			t.Errorf("avg goodness %v at %s below the acceptance line", v, avg.Columns[c])
		}
	}
	// Invalid configurations fail fast.
	bad := SmallSamplingConfig()
	bad.Sizes = nil
	if _, _, err := SamplingStudy(bad); err == nil {
		t.Error("empty sizes must fail")
	}
}

func TestAblationPolicies(t *testing.T) {
	env := testEnv(t)
	table, err := AblationPolicies(env, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("A1 rows = %d", len(table.Rows))
	}
	// Find the greedy and random rows; greedy should need no more
	// probes than random (allow small noise).
	probes := map[string]float64{}
	for ri, row := range table.Rows {
		probes[row[0]] = cell(t, table, ri, 1)
	}
	if probes["greedy"] > probes["random"]+0.5 {
		t.Errorf("greedy used %v probes vs random %v; policy looks broken", probes["greedy"], probes["random"])
	}
}

func TestAblationTypeThreshold(t *testing.T) {
	env := testEnv(t)
	table, err := AblationTypeThreshold(env, []float64{10, 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("A2 rows = %d", len(table.Rows))
	}
	for ri := range table.Rows {
		if v := cell(t, table, ri, 1); v < 0 || v > 1 {
			t.Errorf("row %d CorA %v out of range", ri, v)
		}
	}
}

func TestAblationEDBins(t *testing.T) {
	env := testEnv(t)
	table, err := AblationEDBins(env, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("A3 rows = %d", len(table.Rows))
	}
}

func TestAblationTrainingSize(t *testing.T) {
	env := testEnv(t)
	table, err := AblationTrainingSize(env, []int{50, 300, 10000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("A4 rows = %d", len(table.Rows))
	}
	// The oversize request clamps to the actual training-set size.
	if table.Rows[2][0] != "300" {
		t.Errorf("clamped size = %s, want 300", table.Rows[2][0])
	}
}

func TestAblationProbeCosts(t *testing.T) {
	env := testEnv(t)
	table, err := AblationProbeCosts(env, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("A5 rows = %d", len(table.Rows))
	}
	blind := cell(t, table, 0, 2)
	aware := cell(t, table, 1, 2)
	if aware > blind*1.25 {
		t.Errorf("cost-aware greedy (%v) much worse than cost-blind (%v)", aware, blind)
	}
}

func TestTableRendering(t *testing.T) {
	table := &Table{
		ID:      "T",
		Title:   "test",
		Columns: []string{"a", "b"},
		Notes:   []string{"hello"},
	}
	table.AddRow("x", "y")
	s := table.String()
	if !strings.Contains(s, "T — test") || !strings.Contains(s, "note: hello") {
		t.Errorf("rendering = %q", s)
	}
	csv := table.CSV()
	if csv != "a,b\nx,y\n" {
		t.Errorf("CSV = %q", csv)
	}
}

// TestAblationOptimalPolicy validates the paper's Section 5.4 claim on
// a tiny testbed where the exact optimal policy is computable: the
// greedy policy's probe count is close to optimal, and both clearly
// beat random probing.
func TestAblationOptimalPolicy(t *testing.T) {
	cfg := SmallConfig()
	cfg.Test2, cfg.Test3 = 15, 15
	table, err := AblationOptimalPolicy(cfg, 5, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	probes := map[string]float64{}
	for ri, row := range table.Rows {
		probes[row[0]] = cell(t, table, ri, 1)
	}
	if probes["greedy"] > probes["optimal"]+0.75 {
		t.Errorf("greedy %v probes vs optimal %v; too far from optimal", probes["greedy"], probes["optimal"])
	}
	if probes["optimal"] > probes["random"] {
		t.Errorf("optimal (%v) should not probe more than random (%v)", probes["optimal"], probes["random"])
	}
	// Degenerate inputs clamp.
	if _, err := AblationOptimalPolicy(cfg, 99, 0.85); err != nil {
		t.Errorf("oversized numDBs should clamp, got %v", err)
	}
}

// TestSimilarityVariantPipeline runs the document-similarity relevancy
// end to end (E-SIM): the probabilistic selection must remain at least
// as correct as the raw estimator under the alternative definition too.
func TestSimilarityVariantPipeline(t *testing.T) {
	cfg := SimilarityVariant(SmallConfig())
	cfg.Test2, cfg.Test3 = 40, 40
	env, err := Setup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if env.Rel.Name() != "doc-similarity" {
		t.Fatalf("relevancy = %q", env.Rel.Name())
	}
	table, err := Figure15(env, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	base := cell(t, table, 0, 2)
	rd := cell(t, table, 1, 2)
	t.Logf("similarity: baseline %v, RD-based %v", base, rd)
	if rd < base-0.05 {
		t.Errorf("similarity RD-based (%v) clearly worse than baseline (%v)", rd, base)
	}
}

// TestSamplingStudyKSCrossCheck reruns the sampling study with the
// Kolmogorov-Smirnov statistic: the paper's conclusion (goodness well
// above the acceptance line) must not depend on chi-square binning.
func TestSamplingStudyKSCrossCheck(t *testing.T) {
	cfg := SmallSamplingConfig()
	cfg.UseKS = true
	_, avg, err := SamplingStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c < len(avg.Columns); c++ {
		if avg.Rows[0][c] == "n/a" {
			continue
		}
		if v := cell(t, avg, 0, c); v < 0.05 {
			t.Errorf("KS avg goodness %v at %s below the acceptance line", v, avg.Columns[c])
		}
	}
}

// TestSamplingStudyNotesStatistic checks the F7 table self-documents
// which statistic produced its goodness values.
func TestSamplingStudyNotesStatistic(t *testing.T) {
	cfg := SmallSamplingConfig()
	cfg.UseKS = true
	perDB, _, err := SamplingStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(perDB.Notes[0], "Kolmogorov") {
		t.Errorf("KS F7 note: %q", perDB.Notes[0])
	}
	cfg.UseKS = false
	perDB, _, err = SamplingStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(perDB.Notes[0], "chi-square") {
		t.Errorf("chi-square F7 note: %q", perDB.Notes[0])
	}
}

// TestBaselineComparison (E-BASE): error-aware selection must not lose
// to either classical ranker, and probing must improve on RD-based.
func TestBaselineComparison(t *testing.T) {
	env := testEnv(t)
	table, err := BaselineComparison(env, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	byName := map[string]float64{}
	for ri, row := range table.Rows {
		byName[row[0]] = cell(t, table, ri, 2)
	}
	if byName["RD-based"] < byName["term-independence"]-0.02 {
		t.Errorf("RD-based (%v) lost to term-independence (%v)", byName["RD-based"], byName["term-independence"])
	}
	if byName["APro (2 probes)"] < byName["RD-based"]-0.02 {
		t.Errorf("probing (%v) lost to RD-based (%v)", byName["APro (2 probes)"], byName["RD-based"])
	}
	// CORI must be a sane selector (clearly better than random 1/20).
	if byName["CORI"] < 0.1 {
		t.Errorf("CORI correctness %v looks broken", byName["CORI"])
	}
}

// TestDriftStudy (E-DRIFT): after a database's content drifts, online
// refinement must recover accuracy on the queries the drift re-ranked,
// without collapsing overall accuracy.
func TestDriftStudy(t *testing.T) {
	table, err := DriftStudy(SmallConfig(), "CNNHealthNews", 8, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	afterDriftAffected := table.Rows[1][2]
	afterRefineAffected := table.Rows[2][2]
	if afterDriftAffected == "n/a" || afterRefineAffected == "n/a" {
		t.Skip("drift produced no affected queries at this scale")
	}
	stale := cell(t, table, 1, 2)
	refined := cell(t, table, 2, 2)
	if refined < stale {
		t.Errorf("refinement made affected queries worse: %v -> %v", stale, refined)
	}
	overallStale := cell(t, table, 1, 1)
	overallRefined := cell(t, table, 2, 1)
	if overallRefined < overallStale-0.05 {
		t.Errorf("refinement cost too much overall: %v -> %v", overallStale, overallRefined)
	}
	// Unknown databases fail.
	if _, err := DriftStudy(SmallConfig(), "NoSuchDB", 2, 10); err == nil {
		t.Error("unknown drift database must fail")
	}
}

// TestCalibrationStudy (E-CAL): the reported certainty must track
// empirical accuracy bucket by bucket.
func TestCalibrationStudy(t *testing.T) {
	env := testEnv(t)
	table, err := CalibrationStudy(env, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	for ri, row := range table.Rows {
		if row[1] == "0" {
			continue
		}
		n := cell(t, table, ri, 1)
		if n < 20 {
			continue // too noisy to assert
		}
		promised := cell(t, table, ri, 2)
		empirical := cell(t, table, ri, 3)
		// Generous band: small-sample noise plus model error.
		if empirical < promised-0.2 || empirical > promised+0.2 {
			t.Errorf("bucket %s: promised %v, empirical %v", row[0], promised, empirical)
		}
	}
	// Default bucket count.
	if table2, err := CalibrationStudy(env, 1, 0); err != nil || len(table2.Rows) != 5 {
		t.Errorf("default buckets: %v rows, err %v", len(table2.Rows), err)
	}
}

// TestFusionStudy (E-FUSE): fusing the selected k databases must
// recover clearly more of the global top-N than the single
// best-estimated database.
func TestFusionStudy(t *testing.T) {
	env := testEnv(t)
	table, err := FusionStudy(env, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	byName := map[string]float64{}
	for ri, row := range table.Rows {
		byName[row[0]] = cell(t, table, ri, 1)
	}
	single := byName["single best estimate"]
	if byName["selected k + weighted merge"] <= single && byName["selected k + round-robin"] <= single {
		t.Errorf("fusion never beat the single database: %v", byName)
	}
	// Default topN.
	if _, err := FusionStudy(env, 2, 0); err != nil {
		t.Errorf("default topN failed: %v", err)
	}
}

// TestFigure16ZeroProbeMatchesFigure15 pins the internal consistency of
// the two experiments: Figure 16's zero-probe point is by construction
// the RD-based method of Figure 15.
func TestFigure16ZeroProbeMatchesFigure15(t *testing.T) {
	env := testEnv(t)
	f15, err := Figure15(env, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	f16, err := Figure16(env, 1)
	if err != nil {
		t.Fatal(err)
	}
	rd15 := cell(t, f15, 1, 2)   // RD-based CorA at k=1
	zero16 := cell(t, f16, 0, 1) // panel (a) APro at 0 probes
	if rd15 != zero16 {
		t.Errorf("F15 RD-based (%v) != F16 zero-probe point (%v)", rd15, zero16)
	}
}

// TestSampledSummariesStudy (E-SAMP): with query-sampled summaries the
// error model must still clearly beat the raw estimator — it corrects
// sampling bias on top of correlation bias.
func TestSampledSummariesStudy(t *testing.T) {
	table, err := SampledSummariesStudy(SmallConfig(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	sampledBase := cell(t, table, 2, 2)
	sampledRD := cell(t, table, 3, 2)
	if sampledRD <= sampledBase {
		t.Errorf("sampled RD-based (%v) did not beat sampled baseline (%v)", sampledRD, sampledBase)
	}
	exactBase := cell(t, table, 0, 2)
	if sampledBase < exactBase-0.25 {
		t.Errorf("sampled baseline (%v) collapsed relative to exact (%v); sampling looks broken", sampledBase, exactBase)
	}
}

// TestPrunedSummariesStudy (E-PRUNE): at moderate-to-full budgets the
// error model must keep RD-based selection ahead of the raw estimator.
// At tiny budgets (100 terms) nearly every query lands in the
// query-independent zero band and the probabilistic model legitimately
// degrades below the baseline — E-PRUNE exists to expose that cliff,
// so the first row only needs to hold valid values.
func TestPrunedSummariesStudy(t *testing.T) {
	env := testEnv(t)
	table, err := PrunedSummariesStudy(env, []int{100, 500, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	for ri := 1; ri < len(table.Rows); ri++ {
		base := cell(t, table, ri, 1)
		rd := cell(t, table, ri, 2)
		if rd < base-0.03 {
			t.Errorf("budget %s: RD-based (%v) fell below baseline (%v)", table.Rows[ri][0], rd, base)
		}
	}
	for ri := range table.Rows {
		for ci := 1; ci <= 2; ci++ {
			if v := cell(t, table, ri, ci); v < 0 || v > 1 {
				t.Errorf("cell (%d,%d) = %v out of range", ri, ci, v)
			}
		}
	}
	// The full budget must match Figure 15's RD value on this env.
	f15, err := Figure15(env, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if full, f15rd := cell(t, table, 2, 2), cell(t, f15, 1, 2); full != f15rd {
		t.Errorf("full-budget RD (%v) != Figure 15 RD (%v)", full, f15rd)
	}
	if table.Rows[2][0] != "full" {
		t.Errorf("budget 0 labeled %q, want full", table.Rows[2][0])
	}
}
