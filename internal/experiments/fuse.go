package experiments

import (
	"fmt"
	"sort"

	"metaprobe/internal/core"
	"metaprobe/internal/fusion"
)

// FusionStudy (E-FUSE) evaluates task 2 of the paper's Figure 1 —
// result fusion — which the paper describes but does not measure: after
// database selection picks k sources, how much of the *globally* best
// document set does the fused answer recover?
//
// Ground truth per query: the top-N documents by cosine score over the
// union of all databases (what querying everything would return).
// Metric: precision@N of each strategy's fused list against that
// ground truth. Strategies: APro-selected databases with weighted
// score fusion, the same with round-robin interleaving, and the single
// best-estimated database (no fusion).
func FusionStudy(env *Env, k, topN int) (*Table, error) {
	if topN <= 0 {
		topN = 10
	}
	table := &Table{
		ID:      "EFUSE",
		Title:   fmt.Sprintf("E-FUSE: result-fusion quality (precision@%d vs querying all databases, k=%d)", topN, k),
		Columns: []string{"strategy", "precision@N", "avg probes"},
		Notes: []string{
			"ground truth: the globally top-N documents over all 20 databases",
		},
	}

	type acc struct {
		precision float64
		probes    float64
		n         int
	}
	accs := map[string]*acc{
		"selected k + weighted merge": {},
		"selected k + round-robin":    {},
		"single best estimate":        {},
	}
	var firstErr error
	evalParallel(len(env.Golden), func(qi int, add func(update func())) {
		g := env.Golden[qi]
		query := g.Query.String()

		// Global ground truth: best topN docs across every database.
		type scored struct {
			id    string
			score float64
		}
		var global []scored
		for i := 0; i < env.Testbed.Len(); i++ {
			res, err := env.Testbed.DB(i).Search(query, topN)
			if err != nil {
				add(func() { firstErr = err })
				return
			}
			for _, d := range res.Docs {
				global = append(global, scored{d.ID, d.Score})
			}
		}
		if len(global) == 0 {
			return // nothing retrievable anywhere; skip query
		}
		sort.Slice(global, func(a, b int) bool {
			if global[a].score != global[b].score {
				return global[a].score > global[b].score
			}
			return global[a].id < global[b].id
		})
		if len(global) > topN {
			global = global[:topN]
		}
		truth := make(map[string]struct{}, len(global))
		for _, s := range global {
			truth[s.id] = struct{}{}
		}
		precision := func(items []fusion.Item) float64 {
			hits := 0
			for _, it := range items {
				if _, ok := truth[it.Doc.ID]; ok {
					hits++
				}
			}
			return float64(hits) / float64(len(truth))
		}

		// Strategy inputs: APro-selected k databases at t=0.8.
		sel := env.Selection(g.Query, core.Partial, k)
		out, err := core.APro(sel, env.Probe(query), &core.Greedy{}, 0.8, -1)
		if err != nil {
			add(func() { firstErr = err })
			return
		}
		var lists []fusion.SourceList
		for _, dbIdx := range out.Set {
			res, err := env.Testbed.DB(dbIdx).Search(query, topN)
			if err != nil {
				add(func() { firstErr = err })
				return
			}
			lists = append(lists, fusion.SourceList{
				Database: env.Testbed.DB(dbIdx).Name(),
				Weight:   float64(res.MatchCount) + 1,
				Docs:     res.Docs,
			})
		}
		weighted, err := fusion.WeightedMerge(lists, topN)
		if err != nil {
			add(func() { firstErr = err })
			return
		}
		rr, err := fusion.RoundRobin(lists, topN)
		if err != nil {
			add(func() { firstErr = err })
			return
		}

		// Single best-estimated database, no fusion.
		best := sel.BaselineSelect()[:1]
		res, err := env.Testbed.DB(best[0]).Search(query, topN)
		if err != nil {
			add(func() { firstErr = err })
			return
		}
		var single []fusion.Item
		for _, d := range res.Docs {
			single = append(single, fusion.Item{Database: env.Testbed.DB(best[0]).Name(), Doc: d})
		}

		pw, pr, ps := precision(weighted), precision(rr), precision(single)
		probes := float64(out.Probes())
		add(func() {
			a := accs["selected k + weighted merge"]
			a.precision += pw
			a.probes += probes
			a.n++
			a = accs["selected k + round-robin"]
			a.precision += pr
			a.probes += probes
			a.n++
			a = accs["single best estimate"]
			a.precision += ps
			a.n++
		})
	})
	if firstErr != nil {
		return nil, firstErr
	}
	for _, name := range []string{"selected k + weighted merge", "selected k + round-robin", "single best estimate"} {
		a := accs[name]
		if a.n == 0 {
			table.AddRow(name, "n/a", "n/a")
			continue
		}
		table.AddRow(name, f3(a.precision/float64(a.n)), f2(a.probes/float64(a.n)))
	}
	return table, nil
}
