package experiments

import (
	"fmt"

	"metaprobe/internal/core"
	"metaprobe/internal/eval"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
	"metaprobe/internal/summary"
)

// SampledSummariesStudy (E-SAMP) replays Figure 15 in the realistic
// deployment setting the paper's reference [8] addresses: the
// metasearcher cannot read the databases' indexes, so content
// summaries come from *query-based sampling* through the public search
// interface. Sampled summaries are incomplete and biased; the question
// is how much selection quality survives — and how much of the loss
// the error model recovers (its zero-estimate band explicitly learns
// "this estimate said nothing matches, but things did").
func SampledSummariesStudy(cfg Config, probesPerDB int) (*Table, error) {
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}
	if probesPerDB <= 0 {
		probesPerDB = 80
	}

	// Sample every database through its search interface only.
	seedTerms := []string{"health", "cancer", "heart", "report", "child", "diet", "drug", "study"}
	sampled := &summary.Set{Summaries: make([]*summary.Summary, env.Testbed.Len())}
	rng := stats.NewRNG(cfg.Seed).Fork(555)
	for i := 0; i < env.Testbed.Len(); i++ {
		s, err := summary.Sample(env.Testbed.DB(i), summary.SampleConfig{
			SeedTerms:  seedTerms,
			NumQueries: probesPerDB,
		}, rng.Fork(int64(i)))
		if err != nil {
			return nil, fmt.Errorf("experiments: sampling %s: %w", env.Testbed.DB(i).Name(), err)
		}
		sampled.Summaries[i] = s
	}

	// Train a second model on the sampled summaries (the error model
	// now corrects sampling bias *and* correlation bias).
	sampledModel, err := core.Train(env.Testbed, sampled, env.Rel, env.Train, cfg.Model)
	if err != nil {
		return nil, err
	}

	table := &Table{
		ID:      "ESAMP",
		Title:   "E-SAMP: exact vs query-sampled content summaries (k=1)",
		Columns: []string{"summaries", "method", "Avg(Cor_a)"},
		Notes: []string{
			fmt.Sprintf("sampling: %d probe queries per database, %d seed terms, documents fetched through the search interface", probesPerDB, len(seedTerms)),
		},
	}
	score := func(model *core.Model, sums *summary.Set, baseline bool) (float64, error) {
		s, err := eval.Score(env.Golden, 1, func(q queries.Query) ([]int, int, error) {
			if baseline {
				ests := make([]float64, env.Testbed.Len())
				for i := range ests {
					ests[i] = env.Rel.Estimate(sums.Summaries[i], q.String())
				}
				return core.TopKByScore(ests, 1), 0, nil
			}
			sel := model.NewSelection(q.String(), q.NumTerms(), core.Absolute, 1).
				WithBestSetOptions(env.Cfg.BestSetOpts)
			set, _ := sel.Best()
			return set, 0, nil
		})
		if err != nil {
			return 0, err
		}
		return s.AvgCorA, nil
	}

	for _, row := range []struct {
		label    string
		model    *core.Model
		sums     *summary.Set
		baseline bool
	}{
		{"exact", env.Model, env.Summaries, true},
		{"exact", env.Model, env.Summaries, false},
		{"sampled", sampledModel, sampled, true},
		{"sampled", sampledModel, sampled, false},
	} {
		v, err := score(row.model, row.sums, row.baseline)
		if err != nil {
			return nil, err
		}
		method := "RD-based"
		if row.baseline {
			method = "term-independence"
		}
		table.AddRow(row.label, method, f3(v))
	}
	return table, nil
}
