package experiments

import (
	"fmt"

	"metaprobe/internal/core"
	"metaprobe/internal/estimate"
	"metaprobe/internal/eval"
	"metaprobe/internal/queries"
)

// BaselineComparison (E-BASE) widens Figure 15 with selectors from the
// wider database-selection literature: the CORI inference-network
// ranker joins the term-independence estimator, RD-based selection,
// and APro with small fixed probe budgets. The paper's claim in
// context: error-aware selection beats *both* classical summary-based
// rankers, and a probe or two closes most of the remaining gap.
func BaselineComparison(env *Env, ks []int) (*Table, error) {
	table := &Table{
		ID:      "EBASE",
		Title:   "E-BASE: selector comparison (classical rankers vs probabilistic selection)",
		Columns: []string{"method", "k", "Avg(Cor_a)", "Avg(Cor_p)", "avg probes"},
		Notes: []string{
			"CORI: Callan et al., SIGIR 1995, default parameters (b=0.4, k=200, b_s=0.75)",
		},
	}
	cori := estimate.NewCORI()
	for _, k := range ks {
		add := func(name string, sel eval.Selector) error {
			score, err := eval.Score(env.Golden, k, sel)
			if err != nil {
				return fmt.Errorf("experiments: %s (k=%d): %w", name, k, err)
			}
			table.AddRow(name, fmt.Sprintf("%d", k), f3(score.AvgCorA), f3(score.AvgCorP), f2(score.AvgProbes))
			return nil
		}

		if err := add("term-independence", func(q queries.Query) ([]int, int, error) {
			sel := env.Selection(q, core.Absolute, k)
			return sel.BaselineSelect(), 0, nil
		}); err != nil {
			return nil, err
		}
		if err := add("CORI", func(q queries.Query) ([]int, int, error) {
			scores, err := cori.Scores(env.Summaries, q.String())
			if err != nil {
				return nil, 0, err
			}
			return core.TopKByScore(scores, k), 0, nil
		}); err != nil {
			return nil, err
		}
		if err := add("RD-based", func(q queries.Query) ([]int, int, error) {
			sel := env.Selection(q, core.Absolute, k)
			set, _ := sel.Best()
			return set, 0, nil
		}); err != nil {
			return nil, err
		}
		for _, probes := range []int{1, 2} {
			budget := probes
			if err := add(fmt.Sprintf("APro (%d probes)", budget), func(q queries.Query) ([]int, int, error) {
				sel := env.Selection(q, core.Absolute, k)
				out, err := core.APro(sel, env.Probe(q.String()), &core.Greedy{}, 1, budget)
				if err != nil {
					return nil, 0, err
				}
				return out.Set, out.Probes(), nil
			}); err != nil {
				return nil, err
			}
		}
	}
	return table, nil
}
