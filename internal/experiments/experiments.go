// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6 plus the Section 4.2 sampling-size study), and
// the design-choice ablations listed in DESIGN.md. Each experiment
// returns a Table whose rows mirror the rows/series the paper reports.
package experiments

import (
	"fmt"
	"strings"

	"metaprobe/internal/core"
	"metaprobe/internal/corpus"
	"metaprobe/internal/estimate"
	"metaprobe/internal/eval"
	"metaprobe/internal/hidden"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
	"metaprobe/internal/summary"
)

// Config sizes the main health-testbed pipeline (Section 6.1). The
// paper's full setting is Scale 1 with 1 000 + 1 000 training and test
// queries; the defaults here are scaled down to finish in minutes on a
// small machine while preserving every qualitative shape.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Scale multiplies the Figure 14 collection sizes.
	Scale float64
	// Train2, Train3 are the 2-/3-term training-query counts.
	Train2, Train3 int
	// Test2, Test3 are the 2-/3-term test-query counts.
	Test2, Test3 int
	// Model is the training configuration.
	Model core.Config
	// BestSetOpts bounds the absolute-metric set search.
	BestSetOpts core.BestSetOptions
	// MaxDatabases truncates the Figure 14 roster (0 = all 20); the
	// optimal-policy ablation needs a tiny testbed (its cost is
	// factorial).
	MaxDatabases int
	// Relevancy overrides the relevancy definition (nil: document
	// frequency, the paper's evaluation setting). Set it together with
	// a matching Model config — see SimilarityVariant.
	Relevancy estimate.Relevancy
}

// SimilarityVariant returns cfg switched to the document-similarity
// relevancy definition (Section 2.1's second definition): best-document
// cosine, GlOSS-style estimation, similarity-scaled error bins. The
// paper states its techniques apply to both definitions; this variant
// demonstrates it end to end (experiment E-SIM in DESIGN.md).
func SimilarityVariant(cfg Config) Config {
	cfg.Relevancy = estimate.NewDocSimilarity()
	cfg.Model = core.SimilarityConfig()
	return cfg
}

// DefaultConfig is the configuration used by cmd/experiments.
func DefaultConfig() Config {
	return Config{
		Seed:   2004, // ICDE 2004
		Scale:  0.05,
		Train2: 1000, Train3: 1000,
		Test2: 1000, Test3: 1000,
		Model:       core.DefaultConfig(),
		BestSetOpts: core.BestSetOptions{ExtraCandidates: 4, ExhaustiveLimit: 300},
	}
}

// SmallConfig is a fast configuration for tests.
func SmallConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.01
	cfg.Train2, cfg.Train3 = 150, 150
	cfg.Test2, cfg.Test3 = 60, 60
	return cfg
}

// Env is a fully prepared experiment environment: testbed, summaries,
// trained model, query sets and golden standard.
type Env struct {
	// Cfg is the configuration the environment was built with.
	Cfg Config
	// World is the vocabulary universe.
	World *corpus.World
	// Specs are the database specifications (Figure 14).
	Specs []corpus.DatabaseSpec
	// Testbed are the live databases.
	Testbed *hidden.Testbed
	// Summaries are the exact content summaries.
	Summaries *summary.Set
	// Rel is the relevancy definition (document frequency, Eq. 1).
	Rel estimate.Relevancy
	// Model is the trained probabilistic relevancy model.
	Model *core.Model
	// Train and Test are the disjoint query sets.
	Train, Test []queries.Query
	// Golden is the test queries' ground truth.
	Golden []eval.Golden
}

// Setup builds the complete pipeline of Section 6.1: generate the 20
// health databases, build summaries, draw Q_train/Q_test, learn the
// error distributions, and compute the golden standard.
func Setup(cfg Config) (*Env, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("experiments: scale must be positive")
	}
	rel := cfg.Relevancy
	if rel == nil {
		rel = estimate.NewDocFrequency()
	}
	env := &Env{Cfg: cfg, World: corpus.HealthWorld(), Rel: rel}
	env.Specs = corpus.HealthTestbed(cfg.Scale)
	if cfg.MaxDatabases > 0 && cfg.MaxDatabases < len(env.Specs) {
		env.Specs = env.Specs[:cfg.MaxDatabases]
	}

	var err error
	env.Testbed, err = hidden.BuildTestbed(env.World, env.Specs, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: building testbed: %w", err)
	}
	env.Summaries, err = summary.BuildExact(env.Testbed)
	if err != nil {
		return nil, fmt.Errorf("experiments: building summaries: %w", err)
	}
	gen, err := queries.NewGenerator(env.World, queries.Config{})
	if err != nil {
		return nil, fmt.Errorf("experiments: query generator: %w", err)
	}
	env.Train, env.Test, err = gen.TrainTest(stats.NewRNG(cfg.Seed).Fork(1),
		cfg.Train2, cfg.Train3, cfg.Test2, cfg.Test3)
	if err != nil {
		return nil, fmt.Errorf("experiments: query sets: %w", err)
	}
	env.Model, err = core.Train(env.Testbed, env.Summaries, env.Rel, env.Train, cfg.Model)
	if err != nil {
		return nil, fmt.Errorf("experiments: training: %w", err)
	}
	env.Golden, err = eval.BuildGolden(env.Testbed, env.Rel, env.Test)
	if err != nil {
		return nil, fmt.Errorf("experiments: golden standard: %w", err)
	}
	return env, nil
}

// Probe issues the live query to database i of the testbed (the
// ProbeFunc used by every APro run in the experiments).
func (e *Env) Probe(query string) core.ProbeFunc {
	return func(i int) (float64, error) {
		return e.Rel.Probe(e.Testbed.DB(i), query)
	}
}

// Selection builds a query's initial selection state with the
// environment's best-set options applied.
func (e *Env) Selection(q queries.Query, metric core.Metric, k int) *core.Selection {
	sel := e.Model.NewSelection(q.String(), q.NumTerms(), metric, k)
	return sel.WithBestSetOptions(e.Cfg.BestSetOpts)
}

// Table is a printable experiment result mirroring one paper artifact.
type Table struct {
	// ID is the experiment identifier ("F15", "A1", ...).
	ID string
	// Title describes the artifact ("Figure 15: ...").
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, one slice per row.
	Rows [][]string
	// Notes carry provenance (configuration, shape expectations).
	Notes []string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are not
// needed: cells never contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// f3 formats a float with three decimals (the paper's precision).
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
