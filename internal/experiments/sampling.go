package experiments

import (
	"fmt"

	"metaprobe/internal/core"
	"metaprobe/internal/corpus"
	"metaprobe/internal/estimate"
	"metaprobe/internal/hidden"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
	"metaprobe/internal/summary"
)

// SamplingConfig sizes the Section 4.2 sampling-size study (Figures 7
// and 8): 20 newsgroup-like databases, a large pool of 2-term queries
// of one type per database, an ideal ED from the whole pool, and
// chi-square comparisons of sampled EDs against it.
type SamplingConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Scale multiplies newsgroup collection sizes (paper: 1840–28910
	// articles).
	Scale float64
	// PoolSize is the number of 2-term pool queries (the paper's
	// Q_total per type held 150k–600k; the goodness statistics
	// stabilize far earlier).
	PoolSize int
	// Sizes are the sampling sizes S to test (paper: 100, 200, 500,
	// 1000, 2000).
	Sizes []int
	// Reps is the number of repetitions per size (paper: 10).
	Reps int
	// Band selects the query type studied; the paper focuses on
	// "2-term queries with r̂ ≥ threshold" (BandHigh).
	Band core.EstimateBand
	// Threshold is the r̂ split; it must be scaled along with the
	// databases (the paper's 100 assumed full-size collections).
	Threshold float64
	// ShowDBs limits Figure 7's per-database rows (0 = all).
	ShowDBs int
	// UseKS replaces the paper's Pearson chi-square goodness with the
	// binning-free two-sample Kolmogorov-Smirnov p-value — a
	// cross-check that the conclusion does not hinge on the binning.
	UseKS bool
}

// DefaultSamplingConfig returns the study configuration used by
// cmd/experiments.
func DefaultSamplingConfig() SamplingConfig {
	return SamplingConfig{
		Seed:      42,
		Scale:     0.2,
		PoolSize:  50000,
		Sizes:     []int{100, 200, 500, 1000, 2000},
		Reps:      10,
		Band:      core.BandHigh,
		Threshold: 20,
		ShowDBs:   3,
	}
}

// SmallSamplingConfig is a fast configuration for tests.
func SmallSamplingConfig() SamplingConfig {
	cfg := DefaultSamplingConfig()
	cfg.Scale = 0.05
	cfg.PoolSize = 2000
	cfg.Sizes = []int{50, 100, 200}
	cfg.Reps = 4
	cfg.Threshold = 5
	return cfg
}

// SamplingStudy runs the Figure 7 / Figure 8 experiment and returns
// both tables: per-database goodness curves and the 20-database
// average.
func SamplingStudy(cfg SamplingConfig) (perDB, avg *Table, err error) {
	if cfg.PoolSize <= 0 || cfg.Reps <= 0 || len(cfg.Sizes) == 0 {
		return nil, nil, fmt.Errorf("experiments: invalid sampling config %+v", cfg)
	}
	world := corpus.NewsgroupWorld(cfg.Seed)
	specs := corpus.NewsgroupTestbed(world, cfg.Scale)
	tb, err := hidden.BuildTestbed(world, specs, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	sums, err := summary.BuildExact(tb)
	if err != nil {
		return nil, nil, err
	}
	gen, err := queries.NewGenerator(world, queries.Config{})
	if err != nil {
		return nil, nil, err
	}
	pool, err := gen.Pool(stats.NewRNG(cfg.Seed).Fork(7), cfg.PoolSize, 0)
	if err != nil {
		return nil, nil, err
	}
	rel := estimate.NewDocFrequency()
	classifier := core.Classifier{Threshold: cfg.Threshold, MaxTerms: 4}

	perDB = &Table{
		ID:      "F7",
		Title:   "Figure 7: average goodness of sampling sizes, per database",
		Columns: append([]string{"database", "|Q_total|"}, sizeCols(cfg.Sizes)...),
		Notes: []string{
			fmt.Sprintf("goodness = %s p-value of ED_S vs ED_total; acceptance line 0.05; query type: 2-term, %s band (threshold %g)",
				statisticName(cfg.UseKS), cfg.Band, cfg.Threshold),
		},
	}
	avg = &Table{
		ID:      "F8",
		Title:   "Figure 8: average goodness of sampling sizes over all databases",
		Columns: append([]string{"metric"}, sizeCols(cfg.Sizes)...),
	}

	sumGoodness := make([]float64, len(cfg.Sizes))
	counted := make([]int, len(cfg.Sizes))
	type dbRow struct {
		name  string
		pool  int
		cells []string
	}
	rows := make([]dbRow, tb.Len())

	evalParallel(tb.Len(), func(dbIdx int, add func(update func())) {
		name := tb.DB(dbIdx).Name()
		sum := sums.Summaries[dbIdx]

		// Q_total for this database: pool queries of the studied type.
		var errs []float64
		for _, q := range pool {
			qs := q.String()
			rhat := rel.Estimate(sum, qs)
			key := classifier.Classify(q.NumTerms(), rhat)
			if key.Band != cfg.Band {
				continue
			}
			actual, perr := rel.Probe(tb.DB(dbIdx), qs)
			if perr != nil {
				add(func() { err = perr })
				return
			}
			errs = append(errs, (actual-rhat)/rhat)
		}
		row := dbRow{name: name, pool: len(errs)}
		ideal := newStudyED()
		for _, e := range errs {
			ideal.Hist.Add(e)
		}
		rng := stats.NewRNG(cfg.Seed).Fork(int64(1000 + dbIdx))
		goodness := make([]float64, len(cfg.Sizes))
		ok := make([]bool, len(cfg.Sizes))
		for si, s := range cfg.Sizes {
			if 2*s > len(errs) {
				// A sample of most of the pool trivially matches the
				// ideal ED; require the pool to be at least twice the
				// sampling size, else report n/a.
				continue
			}
			total := 0.0
			for rep := 0; rep < cfg.Reps; rep++ {
				idx := stats.SampleWithoutReplacement(rng, len(errs), s)
				if cfg.UseKS {
					sampleErrs := make([]float64, len(idx))
					for si2, i := range idx {
						sampleErrs[si2] = errs[i]
					}
					res, cerr := stats.KolmogorovSmirnov(sampleErrs, errs)
					if cerr != nil {
						add(func() { err = cerr })
						return
					}
					total += res.PValue
					continue
				}
				sample := newStudyED()
				for _, i := range idx {
					sample.Hist.Add(errs[i])
				}
				res, cerr := sample.Compare(ideal, 0)
				if cerr != nil {
					add(func() { err = cerr })
					return
				}
				total += res.PValue
			}
			goodness[si] = total / float64(cfg.Reps)
			ok[si] = true
		}
		for si := range cfg.Sizes {
			if ok[si] {
				row.cells = append(row.cells, f3(goodness[si]))
			} else {
				row.cells = append(row.cells, "n/a")
			}
		}
		add(func() {
			rows[dbIdx] = row
			for si := range cfg.Sizes {
				if ok[si] {
					sumGoodness[si] += goodness[si]
					counted[si]++
				}
			}
		})
	})
	if err != nil {
		return nil, nil, err
	}

	show := cfg.ShowDBs
	if show <= 0 || show > len(rows) {
		show = len(rows)
	}
	for _, r := range rows[:show] {
		perDB.AddRow(append([]string{r.name, fmt.Sprintf("%d", r.pool)}, r.cells...)...)
	}
	avgRow := []string{"avg goodness"}
	for si := range cfg.Sizes {
		if counted[si] > 0 {
			avgRow = append(avgRow, f3(sumGoodness[si]/float64(counted[si])))
		} else {
			avgRow = append(avgRow, "n/a")
		}
	}
	avg.Rows = append(avg.Rows, avgRow)
	avg.Notes = append(avg.Notes,
		fmt.Sprintf("averaged over %d databases with sufficient pools; statistical-test bottom line 0.05", tb.Len()))
	return perDB, avg, nil
}

// newStudyED builds the 10-bin relative-error histogram the paper's
// chi-square setup uses ("10 bins and degree of freedom as 9").
func newStudyED() *core.ED {
	edges := []float64{-1, -0.8, -0.6, -0.4, -0.2, 0, 0.25, 0.5, 1.0, 2.0, 1e18}
	ed, err := core.NewED(edges, false, false)
	if err != nil {
		panic(err)
	}
	return ed
}

func statisticName(useKS bool) string {
	if useKS {
		return "two-sample Kolmogorov-Smirnov"
	}
	return "Pearson chi-square"
}

func sizeCols(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = fmt.Sprintf("S=%d", s)
	}
	return out
}
