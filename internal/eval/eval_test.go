package eval

import (
	"fmt"
	"testing"

	"metaprobe/internal/core"
	"metaprobe/internal/corpus"
	"metaprobe/internal/estimate"
	"metaprobe/internal/hidden"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
	"metaprobe/internal/summary"
)

func TestCorrectnessMetrics(t *testing.T) {
	cases := []struct {
		sel, top   []int
		corA, corP float64
	}{
		{[]int{1, 3, 5}, []int{1, 3, 5}, 1, 1},
		{[]int{1, 3, 5}, []int{1, 3, 6}, 0, 2.0 / 3},
		{[]int{0}, []int{4}, 0, 0},
		{[]int{4}, []int{4}, 1, 1},
		{[]int{1, 2}, []int{2, 3}, 0, 0.5},
		{nil, nil, 1, 0},
	}
	for _, c := range cases {
		if got := CorA(c.sel, c.top); got != c.corA {
			t.Errorf("CorA(%v, %v) = %v, want %v", c.sel, c.top, got, c.corA)
		}
		if got := CorP(c.sel, c.top); got != c.corP {
			t.Errorf("CorP(%v, %v) = %v, want %v", c.sel, c.top, got, c.corP)
		}
	}
	// Example from Section 3.2: DB³ containing 2 of the top 3 → 2/3.
	if got := CorP([]int{0, 1, 2}, []int{1, 2, 9}); got != 2.0/3 {
		t.Errorf("partial credit = %v, want 2/3", got)
	}
}

func TestGoldenTopK(t *testing.T) {
	g := Golden{Actual: []float64{5, 9, 9, 1}}
	if got := fmt.Sprint(g.TopK(1)); got != "[1]" {
		t.Errorf("TopK(1) = %v (tie to lower index)", got)
	}
	if got := fmt.Sprint(g.TopK(2)); got != "[1 2]" {
		t.Errorf("TopK(2) = %v", got)
	}
	if got := fmt.Sprint(g.TopK(3)); got != "[0 1 2]" {
		t.Errorf("TopK(3) = %v", got)
	}
}

func TestBuildGoldenAndScore(t *testing.T) {
	w := corpus.HealthWorld()
	tb, err := hidden.BuildTestbed(w, corpus.HealthTestbed(0.005)[:4], 17)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := queries.NewGenerator(w, queries.Config{})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gen.Pool(stats.NewRNG(5), 30, 30)
	if err != nil {
		t.Fatal(err)
	}
	rel := estimate.NewDocFrequency()
	golden, err := BuildGolden(tb, rel, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(golden) != 60 {
		t.Fatalf("golden entries = %d", len(golden))
	}
	for _, g := range golden {
		if len(g.Actual) != tb.Len() {
			t.Fatalf("golden row has %d values", len(g.Actual))
		}
	}

	// A perfect oracle scores 1/1.
	oracle := func(q queries.Query) ([]int, int, error) {
		for _, g := range golden {
			if g.Query.String() == q.String() {
				return g.TopK(2), 0, nil
			}
		}
		return nil, 0, fmt.Errorf("unknown query %q", q)
	}
	score, err := Score(golden, 2, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if score.AvgCorA != 1 || score.AvgCorP != 1 || score.AvgProbes != 0 || score.Queries != 60 {
		t.Errorf("oracle score = %+v", score)
	}

	// A fixed wrong-ish method scores strictly less.
	fixed := func(q queries.Query) ([]int, int, error) { return []int{0, 1}, 3, nil }
	score, err = Score(golden, 2, fixed)
	if err != nil {
		t.Fatal(err)
	}
	if score.AvgCorA >= 1 {
		t.Errorf("fixed method suspiciously perfect: %+v", score)
	}
	if score.AvgProbes != 3 {
		t.Errorf("AvgProbes = %v, want 3", score.AvgProbes)
	}

	// Baseline via summaries must be between 0 and 1 and the estimator
	// must at least beat the constant method on partial correctness.
	sums, err := summary.BuildExact(tb)
	if err != nil {
		t.Fatal(err)
	}
	baseline := func(q queries.Query) ([]int, int, error) {
		ests := make([]float64, tb.Len())
		for i := range ests {
			ests[i] = rel.Estimate(sums.Summaries[i], q.String())
		}
		return core.TopKByScore(ests, 2), 0, nil
	}
	bs, err := Score(golden, 2, baseline)
	if err != nil {
		t.Fatal(err)
	}
	if bs.AvgCorP <= 0 || bs.AvgCorP > 1 {
		t.Errorf("baseline partial correctness %v out of range", bs.AvgCorP)
	}
}

func TestScoreErrors(t *testing.T) {
	if _, err := Score(nil, 1, func(queries.Query) ([]int, int, error) { return nil, 0, nil }); err == nil {
		t.Error("empty golden must fail")
	}
	golden := []Golden{{Query: queries.Query{Terms: []string{"a"}}, Actual: []float64{1, 2}}}
	failing := func(queries.Query) ([]int, int, error) { return nil, 0, fmt.Errorf("boom") }
	if _, err := Score(golden, 1, failing); err == nil {
		t.Error("selector errors must propagate")
	}
}

func TestBuildGoldenPropagatesFailures(t *testing.T) {
	bad := hidden.NewStaticError("bad", fmt.Errorf("down"))
	tb, err := hidden.NewTestbed([]hidden.Database{bad})
	if err != nil {
		t.Fatal(err)
	}
	qs := []queries.Query{{Terms: []string{"a", "b"}}}
	if _, err := BuildGolden(tb, estimate.NewDocFrequency(), qs); err == nil {
		t.Error("failing database must fail golden build")
	}
}
