// Package eval implements the paper's evaluation methodology (Section
// 6.1): build a golden standard by issuing every test query to every
// database, then score any database-selection method with the absolute
// and partial correctness metrics (Eq. 3 and 4).
package eval

import (
	"fmt"
	"runtime"
	"sync"

	"metaprobe/internal/core"
	"metaprobe/internal/estimate"
	"metaprobe/internal/hidden"
	"metaprobe/internal/queries"
)

// Golden is the ground truth for one query: the exact relevancy of
// every database, obtained by live-querying all of them.
type Golden struct {
	// Query is the test query.
	Query queries.Query
	// Actual holds r(dbᵢ, q) in testbed order.
	Actual []float64
}

// TopK returns the true top-k set (ties to the lower index), sorted by
// index — the DB_topk the paper checks answers against.
func (g *Golden) TopK(k int) []int {
	return core.TopKByScore(g.Actual, k)
}

// BuildGolden issues every query to every database and records the
// exact relevancies. Queries are processed concurrently (the testbed
// is in-process, so this is CPU-bound).
func BuildGolden(tb *hidden.Testbed, rel estimate.Relevancy, qs []queries.Query) ([]Golden, error) {
	out := make([]Golden, len(qs))
	errs := make([]error, len(qs))
	parallelForEach(len(qs), func(qi int) {
		q := qs[qi]
		actual := make([]float64, tb.Len())
		for i := 0; i < tb.Len(); i++ {
			v, err := rel.Probe(tb.DB(i), q.String())
			if err != nil {
				errs[qi] = fmt.Errorf("eval: golden standard for %q: %w", q, err)
				return
			}
			actual[i] = v
		}
		out[qi] = Golden{Query: q, Actual: actual}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CorA is the absolute correctness (Eq. 3): 1 when the selected set
// equals the true top-k, else 0. Both sets must be sorted by index.
func CorA(selected, topk []int) float64 {
	if len(selected) != len(topk) {
		return 0
	}
	for i := range selected {
		if selected[i] != topk[i] {
			return 0
		}
	}
	return 1
}

// CorP is the partial correctness (Eq. 4): |selected ∩ topk| / k.
func CorP(selected, topk []int) float64 {
	if len(topk) == 0 {
		return 0
	}
	set := make(map[int]struct{}, len(topk))
	for _, i := range topk {
		set[i] = struct{}{}
	}
	overlap := 0
	for _, i := range selected {
		if _, ok := set[i]; ok {
			overlap++
		}
	}
	return float64(overlap) / float64(len(topk))
}

// MethodScore aggregates a selection method's performance over a query
// set — the Avg(Cor_a) / Avg(Cor_p) columns of Figure 15.
type MethodScore struct {
	// AvgCorA is the average absolute correctness.
	AvgCorA float64
	// AvgCorP is the average partial correctness.
	AvgCorP float64
	// AvgProbes is the average number of successful probes per query
	// (0 for non-probing methods).
	AvgProbes float64
	// Queries is the number of queries scored.
	Queries int
}

// Selector is any database-selection method: given a query, produce a
// k-set (sorted by index) and the number of probes it spent.
type Selector func(q queries.Query) (set []int, probes int, err error)

// Score runs a selector over the golden standard and averages the
// correctness metrics.
func Score(golden []Golden, k int, sel Selector) (MethodScore, error) {
	if len(golden) == 0 {
		return MethodScore{}, fmt.Errorf("eval: empty golden standard")
	}
	type res struct {
		corA, corP float64
		probes     int
		err        error
	}
	results := make([]res, len(golden))
	parallelForEach(len(golden), func(i int) {
		g := golden[i]
		set, probes, err := sel(g.Query)
		if err != nil {
			results[i].err = err
			return
		}
		topk := g.TopK(k)
		results[i] = res{corA: CorA(set, topk), corP: CorP(set, topk), probes: probes}
	})
	var score MethodScore
	for _, r := range results {
		if r.err != nil {
			return MethodScore{}, r.err
		}
		score.AvgCorA += r.corA
		score.AvgCorP += r.corP
		score.AvgProbes += float64(r.probes)
	}
	n := float64(len(golden))
	score.AvgCorA /= n
	score.AvgCorP /= n
	score.AvgProbes /= n
	score.Queries = len(golden)
	return score, nil
}

// parallelForEach runs f(i) for i in [0, n) on up to GOMAXPROCS
// workers.
func parallelForEach(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
