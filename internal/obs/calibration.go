package obs

import (
	"fmt"
	"sync"
)

// Calibration is a concurrency-safe reliability accumulator for the
// certainty level the metasearcher reports with every answer. The
// paper's semantic contract (Section 3.3) is that E[Cor] is a
// probability the user can rely on — "suppose we select the top-1
// database for 100 queries each with 0.85 certainty ... for around 85
// queries we have got the correct answer" — so a production deployment
// must keep checking that promise against realized correctness.
//
// Observe takes one (predicted certainty, realized correctness) pair;
// realized correctness is 0/1 under the absolute metric and fractional
// under the partial metric, computed from ground truth where available
// (experiments, loadtest, cmd/bench) or from live-probe outcomes. The
// accumulator bins predictions over [0, 1] and exposes per-bin counts,
// the Brier score and the expected-vs-observed gap — the online analog
// of the offline E-CAL study.
//
// A nil *Calibration is a valid disabled value: Observe is a no-op and
// Snapshot returns zeros, matching the package's nil-tolerance
// convention.
type Calibration struct {
	mu   sync.Mutex
	bins []calBin
	// n, sumPred, sumReal, brierSum aggregate over all observations.
	n        int64
	sumPred  float64
	sumReal  float64
	brierSum float64
}

// calBin accumulates one prediction bucket.
type calBin struct {
	n    int64
	pred float64
	real float64
}

// DefaultCalibrationBins is the bin count used when NewCalibration is
// given a non-positive one.
const DefaultCalibrationBins = 10

// NewCalibration returns an accumulator with numBins equal-width
// prediction bins over [0, 1] (numBins ≤ 0 defaults to
// DefaultCalibrationBins).
func NewCalibration(numBins int) *Calibration {
	if numBins <= 0 {
		numBins = DefaultCalibrationBins
	}
	return &Calibration{bins: make([]calBin, numBins)}
}

// Observe records one answer: the certainty predicted at selection time
// and the correctness realized against ground truth. Both values are
// clamped to [0, 1]. Safe for concurrent use.
func (c *Calibration) Observe(predicted, realized float64) {
	if c == nil {
		return
	}
	predicted = clamp01(predicted)
	realized = clamp01(realized)
	bi := int(predicted * float64(len(c.bins)))
	if bi >= len(c.bins) {
		bi = len(c.bins) - 1
	}
	diff := predicted - realized
	c.mu.Lock()
	c.bins[bi].n++
	c.bins[bi].pred += predicted
	c.bins[bi].real += realized
	c.n++
	c.sumPred += predicted
	c.sumReal += realized
	c.brierSum += diff * diff
	c.mu.Unlock()
}

// CalibrationBin is one prediction bucket of a snapshot.
type CalibrationBin struct {
	// Lo and Hi bound the bucket's predicted certainty, [Lo, Hi).
	Lo, Hi float64
	// Count is the number of answers whose prediction fell here.
	Count int64
	// MeanPredicted is the bucket's average predicted certainty.
	MeanPredicted float64
	// MeanObserved is the bucket's average realized correctness.
	MeanObserved float64
	// Gap is MeanObserved − MeanPredicted (positive: the model
	// under-promises; negative: it over-promises).
	Gap float64
}

// CalibrationSnapshot is a consistent point-in-time view of the
// accumulator — what /debug/calibration serves and BENCH reports embed.
type CalibrationSnapshot struct {
	// Samples is the number of observations.
	Samples int64
	// Brier is the mean squared difference between predicted certainty
	// and realized correctness (0 is perfect, 0.25 is as bad as always
	// predicting 0.5 on balanced binary outcomes).
	Brier float64
	// ECE is the expected calibration error: the count-weighted mean of
	// the per-bin absolute gaps.
	ECE float64
	// Gap is the overall mean observed minus mean predicted.
	Gap float64
	// Bins are the per-bucket reliability rows, in ascending prediction
	// order (empty buckets included, with zero counts).
	Bins []CalibrationBin
}

// Snapshot returns the current reliability view.
func (c *Calibration) Snapshot() CalibrationSnapshot {
	if c == nil {
		return CalibrationSnapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := CalibrationSnapshot{Samples: c.n, Bins: make([]CalibrationBin, len(c.bins))}
	width := 1 / float64(len(c.bins))
	for i, b := range c.bins {
		out := CalibrationBin{Lo: float64(i) * width, Hi: float64(i+1) * width, Count: b.n}
		if b.n > 0 {
			out.MeanPredicted = b.pred / float64(b.n)
			out.MeanObserved = b.real / float64(b.n)
			out.Gap = out.MeanObserved - out.MeanPredicted
			snap.ECE += float64(b.n) / float64(c.n) * abs(out.Gap)
		}
		snap.Bins[i] = out
	}
	if c.n > 0 {
		snap.Brier = c.brierSum / float64(c.n)
		snap.Gap = (c.sumReal - c.sumPred) / float64(c.n)
	}
	return snap
}

// Bind registers the accumulator's aggregates and per-bin counts as
// lazily evaluated series in reg, so /metrics carries the calibration
// signal alongside the systems metrics. Safe to call with a nil
// registry or a nil accumulator (both no-op).
func (c *Calibration) Bind(reg *Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.Help("mp_calibration_samples_total", "Answers scored against realized correctness.")
	reg.Help("mp_calibration_brier_score", "Mean squared error of predicted certainty vs realized correctness.")
	reg.Help("mp_calibration_ece", "Expected calibration error (count-weighted mean absolute per-bin gap).")
	reg.Help("mp_calibration_gap", "Mean realized correctness minus mean predicted certainty.")
	reg.Help("mp_calibration_bin_count", "Answers per predicted-certainty bin.")
	reg.Help("mp_calibration_bin_gap", "Observed minus predicted correctness per bin.")
	reg.CounterFunc("mp_calibration_samples_total", nil, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.n)
	})
	reg.GaugeFunc("mp_calibration_brier_score", nil, func() float64 { return c.Snapshot().Brier })
	reg.GaugeFunc("mp_calibration_ece", nil, func() float64 { return c.Snapshot().ECE })
	reg.GaugeFunc("mp_calibration_gap", nil, func() float64 { return c.Snapshot().Gap })
	for i := range c.bins {
		i := i
		lbl := Labels{"bin": c.binLabel(i)}
		reg.GaugeFunc("mp_calibration_bin_count", lbl, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.bins[i].n)
		})
		reg.GaugeFunc("mp_calibration_bin_gap", lbl, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			b := c.bins[i]
			if b.n == 0 {
				return 0
			}
			return (b.real - b.pred) / float64(b.n)
		})
	}
}

// binLabel renders bin i's range for metric labels ("0.70-0.80").
func (c *Calibration) binLabel(i int) string {
	width := 1 / float64(len(c.bins))
	return fmt.Sprintf("%.2f-%.2f", float64(i)*width, float64(i+1)*width)
}

func clamp01(v float64) float64 {
	if v != v || v < 0 { // NaN or negative
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
