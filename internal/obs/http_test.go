package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestTraceHandlerRejectsBadLimits(t *testing.T) {
	rt := NewRingTracer(4)
	rt.TraceSelection(SelectionTrace{Query: "q"})
	srv := httptest.NewServer(TraceHandler(rt))
	defer srv.Close()

	for _, n := range []string{"bogus", "0", "-1", "1.5", "9999999999999999999999"} {
		resp, err := srv.Client().Get(srv.URL + "/?n=" + n)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("?n=%s status = %d, want 400", n, resp.StatusCode)
		}
		if !strings.Contains(string(body), "positive integer") {
			t.Errorf("?n=%s body = %q, want explanation", n, body)
		}
	}

	// An absent n still serves everything.
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("no-limit status = %d", resp.StatusCode)
	}
}

func TestCalibrationHandler(t *testing.T) {
	c := NewCalibration(10)
	c.Observe(0.9, 1)
	srv := httptest.NewServer(CalibrationHandler(c))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var snap CalibrationSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Samples != 1 || len(snap.Bins) != 10 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestCalibrationHandlerNilAccumulator(t *testing.T) {
	srv := httptest.NewServer(CalibrationHandler(nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("nil accumulator status = %d", resp.StatusCode)
	}
	var snap CalibrationSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Samples != 0 {
		t.Errorf("nil accumulator snapshot = %+v", snap)
	}
}

func TestHealthzHandler(t *testing.T) {
	srv := httptest.NewServer(HealthzHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
}

func TestReadyzHandler(t *testing.T) {
	ready := false
	srv := httptest.NewServer(ReadyzHandler(func() bool { return ready }))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("not-ready status = %d, want 503", resp.StatusCode)
	}

	ready = true
	resp, err = srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ready\n" {
		t.Errorf("ready = %d %q", resp.StatusCode, body)
	}
}

func TestReadyzHandlerNilFuncAlwaysReady(t *testing.T) {
	srv := httptest.NewServer(ReadyzHandler(nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("nil ready func status = %d, want 200", resp.StatusCode)
	}
}
