package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCalibrationNilIsNoop(t *testing.T) {
	var c *Calibration
	c.Observe(0.5, 1) // must not panic
	snap := c.Snapshot()
	if snap.Samples != 0 || len(snap.Bins) != 0 {
		t.Errorf("nil snapshot = %+v", snap)
	}
	c.Bind(NewRegistry()) // must not panic
}

func TestCalibrationBinning(t *testing.T) {
	c := NewCalibration(10)
	c.Observe(0.85, 1)
	c.Observe(0.85, 1)
	c.Observe(0.85, 0)
	c.Observe(0.05, 0)
	snap := c.Snapshot()
	if snap.Samples != 4 {
		t.Fatalf("samples = %d", snap.Samples)
	}
	if len(snap.Bins) != 10 {
		t.Fatalf("bins = %d", len(snap.Bins))
	}
	b8 := snap.Bins[8] // [0.8, 0.9)
	if b8.Count != 3 {
		t.Errorf("bin [0.8,0.9) count = %d, want 3", b8.Count)
	}
	if math.Abs(b8.MeanPredicted-0.85) > 1e-12 {
		t.Errorf("bin mean predicted = %v", b8.MeanPredicted)
	}
	if math.Abs(b8.MeanObserved-2.0/3) > 1e-12 {
		t.Errorf("bin mean observed = %v", b8.MeanObserved)
	}
	if math.Abs(b8.Gap-(2.0/3-0.85)) > 1e-12 {
		t.Errorf("bin gap = %v", b8.Gap)
	}
	if snap.Bins[0].Count != 1 {
		t.Errorf("bin [0,0.1) count = %d, want 1", snap.Bins[0].Count)
	}
}

func TestCalibrationBrierAndGap(t *testing.T) {
	c := NewCalibration(0)
	// Two observations: (0.9, 1) and (0.5, 0).
	c.Observe(0.9, 1)
	c.Observe(0.5, 0)
	snap := c.Snapshot()
	wantBrier := (0.1*0.1 + 0.5*0.5) / 2
	if math.Abs(snap.Brier-wantBrier) > 1e-12 {
		t.Errorf("Brier = %v, want %v", snap.Brier, wantBrier)
	}
	wantGap := (1.0 + 0 - 0.9 - 0.5) / 2
	if math.Abs(snap.Gap-wantGap) > 1e-12 {
		t.Errorf("Gap = %v, want %v", snap.Gap, wantGap)
	}
	if snap.ECE <= 0 {
		t.Errorf("ECE = %v, want > 0 for miscalibrated data", snap.ECE)
	}
}

func TestCalibrationPerfectPredictionIsZeroError(t *testing.T) {
	c := NewCalibration(4)
	for i := 0; i < 50; i++ {
		c.Observe(1, 1)
		c.Observe(0, 0)
	}
	snap := c.Snapshot()
	if snap.Brier != 0 || snap.ECE != 0 || snap.Gap != 0 {
		t.Errorf("perfect predictions: Brier=%v ECE=%v Gap=%v, want all 0", snap.Brier, snap.ECE, snap.Gap)
	}
}

func TestCalibrationClampsInputs(t *testing.T) {
	c := NewCalibration(10)
	c.Observe(1.7, -3)         // clamps to (1, 0)
	c.Observe(math.NaN(), 0.5) // clamps to (0, 0.5)
	snap := c.Snapshot()
	if snap.Samples != 2 {
		t.Fatalf("samples = %d", snap.Samples)
	}
	if snap.Bins[9].Count != 1 || snap.Bins[0].Count != 1 {
		t.Errorf("clamped observations landed in wrong bins: %+v", snap.Bins)
	}
}

func TestCalibrationBind(t *testing.T) {
	c := NewCalibration(10)
	c.Observe(0.75, 1)
	c.Observe(0.75, 0.5)
	reg := NewRegistry()
	c.Bind(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"mp_calibration_samples_total 2",
		"mp_calibration_brier_score",
		"mp_calibration_ece",
		"mp_calibration_gap",
		`mp_calibration_bin_count{bin="0.70-0.80"} 2`,
		`mp_calibration_bin_gap{bin="0.70-0.80"}`,
		"# HELP mp_calibration_samples_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCalibrationConcurrentObserve(t *testing.T) {
	c := NewCalibration(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Observe(float64(w)/8, float64(i%2))
			}
		}(w)
	}
	wg.Wait()
	if snap := c.Snapshot(); snap.Samples != 4000 {
		t.Errorf("samples = %d, want 4000", snap.Samples)
	}
}
