package obs

import (
	"math"
	"sort"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("empty histogram: count=%d sum=%v", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramQuantilesApproximateSorted(t *testing.T) {
	// Geometric-bucket quantiles must land within one bucket (≈9%) of
	// the exact sample quantile.
	h := NewHistogram()
	var vals []float64
	v := 0.0001
	for i := 0; i < 1000; i++ {
		vals = append(vals, v)
		h.Observe(v)
		v *= 1.01
	}
	sort.Float64s(vals)
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		exact := vals[int(math.Ceil(p*float64(len(vals))))-1]
		got := h.Quantile(p)
		if rel := math.Abs(got-exact) / exact; rel > 0.10 {
			t.Errorf("p%v: got %v want ≈%v (rel err %.3f)", p, got, exact, rel)
		}
	}
}

func TestHistogramQuantileClampedToObservedRange(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(0.042) // all identical
	}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if q := h.Quantile(p); q != 0.042 {
			t.Errorf("p%v = %v, want exactly 0.042 (min/max clamp)", p, q)
		}
	}
}

func TestHistogramOrderingInvariant(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{0.001, 0.5, 0.003, 2.7, 0.0004, 11, 0.09} {
		h.Observe(v)
	}
	last := -1.0
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		q := h.Quantile(p)
		if q < last {
			t.Errorf("quantiles not monotone: p%v=%v < %v", p, q, last)
		}
		last = q
	}
}

func TestHistogramClampsNegativeAndNaN(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	h.Observe(math.NaN())
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2", h.Count())
	}
	if h.Sum() != 0 {
		t.Errorf("sum = %v, want 0", h.Sum())
	}
}

func TestHistogramSumCount(t *testing.T) {
	h := NewHistogram()
	want := 0.0
	for i := 1; i <= 50; i++ {
		h.Observe(float64(i))
		want += float64(i)
	}
	if h.Count() != 50 {
		t.Errorf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w+1) * 0.001)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestBucketForBoundaries(t *testing.T) {
	// Zero goes to bucket 0; the largest bound to its own bucket;
	// beyond-the-last to the overflow bucket.
	if b := bucketFor(0); b != 0 {
		t.Errorf("bucketFor(0) = %d", b)
	}
	last := histBounds[len(histBounds)-1]
	if b := bucketFor(last); b != len(histBounds)-1 {
		t.Errorf("bucketFor(last bound) = %d, want %d", b, len(histBounds)-1)
	}
	if b := bucketFor(last * 10); b != len(histBounds) {
		t.Errorf("bucketFor(overflow) = %d, want %d", b, len(histBounds))
	}
}
