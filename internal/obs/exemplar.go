package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"time"
)

// Exemplar links one recent observation of a histogram bucket back to
// the trace that produced it, OpenMetrics-style. Each exemplar bucket
// keeps only its most recent exemplar: the point is "show me *a* trace
// that landed here", not a sample archive.
type Exemplar struct {
	Value   float64
	TraceID string
	Time    time.Time
}

// exemplarBounds is the coarse cumulative le ladder used for
// exemplar-bearing _bucket lines. It is intentionally much coarser
// than the histogram's internal geometric buckets: the fine buckets
// answer quantile queries, while this ladder exists purely to hang
// exemplars on a conventional Prometheus bucket layout. A final +Inf
// bucket is implicit.
var exemplarBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// exemplarSlot locates the exemplar bucket for v (len(exemplarBounds)
// is the +Inf slot).
func exemplarSlot(v float64) int {
	for i, le := range exemplarBounds {
		if v <= le {
			return i
		}
	}
	return len(exemplarBounds)
}

// exemplarStore holds one exemplar per coarse bucket, created lazily so
// histograms that never see a trace ID pay nothing.
type exemplarStore struct {
	mu    sync.Mutex
	slots []Exemplar // len(exemplarBounds)+1 once allocated
	any   bool
}

func (e *exemplarStore) put(v float64, traceID string, now time.Time) {
	e.mu.Lock()
	if e.slots == nil {
		e.slots = make([]Exemplar, len(exemplarBounds)+1)
	}
	e.slots[exemplarSlot(v)] = Exemplar{Value: v, TraceID: traceID, Time: now}
	e.any = true
	e.mu.Unlock()
}

func (e *exemplarStore) snapshot() []Exemplar {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.any {
		return nil
	}
	out := make([]Exemplar, len(e.slots))
	copy(out, e.slots)
	return out
}

// ObserveExemplar records v like Observe and, when traceID is
// non-empty, attaches it as the exemplar of the matching bucket so
// the /metrics exposition can link this latency region to a concrete
// trace. Negative and NaN values are clamped to zero, matching
// Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" || h == nopHistogram {
		return
	}
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	h.exemplars.put(v, traceID, time.Now())
}

// Exemplars returns the current exemplar per coarse bucket (the last
// slot is the +Inf bucket); zero-valued entries are empty slots. It
// returns nil when no exemplar was ever recorded.
func (h *Histogram) Exemplars() []Exemplar {
	return h.exemplars.snapshot()
}

// countAtOrBelow approximates the cumulative count of observations
// ≤ le by summing the fine geometric buckets fully contained in
// [0, le]. The ±9% fine-bucket granularity makes this slightly
// conservative at coarse bucket edges, which is fine for exemplar
// bucket lines (the quantile samples remain the precise view).
func (h *Histogram) countAtOrBelow(le float64) int64 {
	if math.IsInf(le, 1) {
		return h.count.Load()
	}
	var cum int64
	for i := range histBounds {
		if histBounds[i] > le {
			break
		}
		cum += h.buckets[i].Load()
	}
	return cum
}

// writeExemplarBuckets emits the OpenMetrics-style cumulative _bucket
// ladder for a histogram that carries at least one exemplar:
//
//	name_bucket{le="0.05"} 37 # {trace_id="4bf9..."} 0.0123 1719400000.123
//	name_bucket{le="+Inf"} 40
//
// Buckets whose slot holds no exemplar are emitted bare, keeping the
// ladder cumulative and complete. Called only when Exemplars() is
// non-nil, so histograms without trace links keep the pure summary
// exposition (which several tests and dashboards pin).
func writeExemplarBuckets(w io.Writer, name string, labels Labels, h *Histogram, exs []Exemplar) error {
	for i := 0; i <= len(exemplarBounds); i++ {
		le := math.Inf(1)
		leStr := "+Inf"
		if i < len(exemplarBounds) {
			le = exemplarBounds[i]
			leStr = trimFloat(le)
		}
		line := fmt.Sprintf("%s_bucket%s %d", name, formatLabelsLE(labels, leStr), h.countAtOrBelow(le))
		if ex := exs[i]; ex.TraceID != "" {
			line += fmt.Sprintf(" # {trace_id=\"%s\"} %v %.3f",
				escapeLabel(ex.TraceID), ex.Value, float64(ex.Time.UnixMilli())/1000)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// trimFloat renders a bucket bound without trailing zeros (0.05, not
// 0.050000).
func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// formatLabelsLE renders {k="v",...,le="bound"} for bucket lines.
func formatLabelsLE(labels Labels, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	keys := sortedLabelKeys(labels)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", k, escapeLabel(labels[k]))
	}
	if len(keys) > 0 {
		b.WriteByte(',')
	}
	fmt.Fprintf(&b, "le=\"%s\"", le)
	b.WriteByte('}')
	return b.String()
}
