package obs

import (
	"sync"
	"time"
)

// ProbeTrace records one live probe of a selection, in issue order.
type ProbeTrace struct {
	// DB is the probed database's name.
	DB string
	// Index is the database's testbed index.
	Index int
	// Usefulness is the policy's expected usefulness of this probe at
	// the moment it was chosen (0 when the policy does not report one).
	Usefulness float64
	// Value is the observed relevancy (meaningless when Err != "").
	Value float64
	// Err is the probe failure, if any.
	Err string `json:",omitempty"`
	// CertaintyAfter is E[Cor] of the best set after this probe.
	CertaintyAfter float64
}

// SelectionTrace is the structured record of one database-selection
// call: what the model believed, what was chosen, what it cost. It
// replaces ad-hoc logging around Select*/APro and is what
// /debug/trace serves.
type SelectionTrace struct {
	// ID is the per-selection identifier ("sel-000042"), shared with
	// the caller through SelectionResult.ID and with structured logs,
	// so one selection can be correlated across trace, log and metric
	// views. Empty when observability is disabled.
	ID string `json:",omitempty"`
	// Time is when the selection started.
	Time time.Time
	// Query is the user query.
	Query string
	// K is the requested set size.
	K int
	// Metric is the correctness metric ("absolute" or "partial").
	Metric string
	// Threshold is the user-required certainty (0 for plain Select).
	Threshold float64
	// Databases are the mediated database names, in testbed order.
	Databases []string
	// Estimates are r̂(db, q) per database, aligned with Databases.
	Estimates []float64
	// InitialCertainty is E[Cor] of the best set before any probing.
	InitialCertainty float64
	// Selected are the chosen database names.
	Selected []string
	// Certainty is E[Cor] of the returned set.
	Certainty float64
	// Reached reports whether Threshold was met.
	Reached bool
	// Probes are the live probes spent, in order.
	Probes []ProbeTrace
	// Elapsed is the wall-clock duration of the selection.
	Elapsed time.Duration
}

// Tracer receives selection traces. Implementations must be safe for
// concurrent use; a nil Tracer disables tracing at zero cost (call
// sites guard with one comparison).
type Tracer interface {
	// TraceSelection is called once per completed selection.
	TraceSelection(t SelectionTrace)
}

// RingTracer keeps the last N selection traces in memory — enough for
// a /debug/trace endpoint and post-hoc "why did it pick those
// databases?" analysis without unbounded growth.
type RingTracer struct {
	mu     sync.Mutex
	traces []SelectionTrace
	next   int
	full   bool
	total  int64
}

// NewRingTracer returns a tracer retaining the last capacity traces
// (capacity ≤ 0 defaults to 64).
func NewRingTracer(capacity int) *RingTracer {
	if capacity <= 0 {
		capacity = 64
	}
	return &RingTracer{traces: make([]SelectionTrace, capacity)}
}

// TraceSelection implements Tracer.
func (r *RingTracer) TraceSelection(t SelectionTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.traces[r.next] = t
	r.next++
	r.total++
	if r.next == len(r.traces) {
		r.next = 0
		r.full = true
	}
}

// Last returns up to n retained traces, newest first (n ≤ 0 returns
// all retained).
func (r *RingTracer) Last(n int) []SelectionTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.full {
		size = len(r.traces)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]SelectionTrace, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + len(r.traces)) % len(r.traces)
		out = append(out, r.traces[idx])
	}
	return out
}

// Total returns the number of traces ever recorded (retained or not).
func (r *RingTracer) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns the number of traces that have been overwritten by
// newer ones — recorded but no longer retained. A consistently growing
// drop count is the signal to raise the ring's capacity (or attach a
// persistent tracer) before debugging an incident.
func (r *RingTracer) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	retained := int64(r.next)
	if r.full {
		retained = int64(len(r.traces))
	}
	return r.total - retained
}

// Bind exports the ring's recorded and dropped counts as lazily read
// counters in reg (metaprobe_traces_recorded_total,
// metaprobe_traces_dropped_total). Nil-tolerant on both sides.
func (r *RingTracer) Bind(reg *Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.Help("metaprobe_traces_recorded_total", "Selection traces recorded into the ring tracer.")
	reg.Help("metaprobe_traces_dropped_total", "Selection traces overwritten by newer ones (recorded but no longer retained).")
	reg.CounterFunc("metaprobe_traces_recorded_total", nil, func() float64 { return float64(r.Total()) })
	reg.CounterFunc("metaprobe_traces_dropped_total", nil, func() float64 { return float64(r.Dropped()) })
}

// MultiTracer fans one trace out to several tracers.
type MultiTracer []Tracer

// TraceSelection implements Tracer.
func (m MultiTracer) TraceSelection(t SelectionTrace) {
	for _, tr := range m {
		if tr != nil {
			tr.TraceSelection(t)
		}
	}
}
