package obs

import (
	"context"
	"sync"
	"time"
)

// CostAccount accumulates the probe cost of one selection: probes
// issued (including hedges and cancelled speculation — everything that
// consumed backend capacity), hedge outcomes, cache hits, bytes
// fetched, and wall time per backend. The paper treats probing cost as
// the budget the adaptive loop spends; this makes the *operational*
// spend of a single request first-class instead of only visible as
// fleet-wide counters.
//
// An account travels through context.Context (WithCost) so the
// executor and the hidden-Web client can charge it from any goroutine;
// all methods are concurrency-safe and nil-tolerant.
type CostAccount struct {
	mu        sync.Mutex
	probes    int
	hedges    int
	hedgeWins int
	cacheHits int
	bytes     int64
	wall      time.Duration
	backends  map[string]*BackendCost
}

// BackendCost is the spend against one backend.
type BackendCost struct {
	Probes int     `json:"probes"`
	Errors int     `json:"errors"`
	WallMs float64 `json:"wall_ms"`
	Bytes  int64   `json:"bytes"`
}

// CostSummary is the immutable snapshot surfaced on SelectionResult.
type CostSummary struct {
	ProbesIssued   int                    `json:"probes_issued"`
	HedgesLaunched int                    `json:"hedges_launched"`
	HedgesWon      int                    `json:"hedges_won"`
	HedgesWasted   int                    `json:"hedges_wasted"`
	CacheHits      int                    `json:"cache_hits"`
	BytesFetched   int64                  `json:"bytes_fetched"`
	WallMs         float64                `json:"wall_ms"`
	Backends       map[string]BackendCost `json:"backends,omitempty"`
}

// NewCostAccount returns an empty account.
func NewCostAccount() *CostAccount { return &CostAccount{} }

type costKey struct{}

// WithCost attaches acct to ctx so downstream probe machinery can
// charge it.
func WithCost(ctx context.Context, acct *CostAccount) context.Context {
	if acct == nil {
		return ctx
	}
	return context.WithValue(ctx, costKey{}, acct)
}

// CostFromContext returns the account carried by ctx, or nil.
func CostFromContext(ctx context.Context) *CostAccount {
	if ctx == nil {
		return nil
	}
	acct, _ := ctx.Value(costKey{}).(*CostAccount)
	return acct
}

// backend returns the per-backend record, creating it lazily (mu held).
func (a *CostAccount) backend(name string) *BackendCost {
	if a.backends == nil {
		a.backends = make(map[string]*BackendCost, 8)
	}
	b, ok := a.backends[name]
	if !ok {
		b = &BackendCost{}
		a.backends[name] = b
	}
	return b
}

// AddProbe charges one issued probe against name with its wall time;
// failed marks a probe that ended in error.
func (a *CostAccount) AddProbe(name string, wall time.Duration, failed bool) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.probes++
	a.wall += wall
	b := a.backend(name)
	b.Probes++
	b.WallMs += float64(wall) / float64(time.Millisecond)
	if failed {
		b.Errors++
	}
}

// AddHedge charges one launched hedge attempt.
func (a *CostAccount) AddHedge() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.hedges++
	a.mu.Unlock()
}

// AddHedgeWin records that a hedge attempt produced the winning
// result.
func (a *CostAccount) AddHedgeWin() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.hedgeWins++
	a.mu.Unlock()
}

// AddCacheHit records a result served from cache (no wire cost).
func (a *CostAccount) AddCacheHit() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.cacheHits++
	a.mu.Unlock()
}

// AddBytes charges n response bytes fetched from name.
func (a *CostAccount) AddBytes(name string, n int64) {
	if a == nil || n <= 0 {
		return
	}
	a.mu.Lock()
	a.bytes += n
	a.backend(name).Bytes += n
	a.mu.Unlock()
}

// Summary snapshots the account. Hedges that did not win are reported
// as wasted: their result was discarded (or cancelled) after the other
// attempt answered. A nil account returns the zero summary.
func (a *CostAccount) Summary() CostSummary {
	if a == nil {
		return CostSummary{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := CostSummary{
		ProbesIssued:   a.probes,
		HedgesLaunched: a.hedges,
		HedgesWon:      a.hedgeWins,
		HedgesWasted:   a.hedges - a.hedgeWins,
		CacheHits:      a.cacheHits,
		BytesFetched:   a.bytes,
		WallMs:         float64(a.wall) / float64(time.Millisecond),
	}
	if len(a.backends) > 0 {
		out.Backends = make(map[string]BackendCost, len(a.backends))
		for k, v := range a.backends {
			out.Backends[k] = *v
		}
	}
	return out
}
