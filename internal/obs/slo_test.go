package obs

import (
	"strings"
	"testing"
	"time"
)

// sloAt builds a tracker with a controllable clock.
func sloAt(cfg SLOConfig, t0 time.Time) (*SLO, *time.Time) {
	now := t0
	s := NewSLO(cfg)
	s.now = func() time.Time { return now }
	return s, &now
}

func TestSLODefaults(t *testing.T) {
	s := NewSLO(SLOConfig{})
	cfg := s.Config()
	if cfg.LatencyObjective != 250*time.Millisecond || cfg.LatencyTarget != 0.99 || cfg.AvailabilityTarget != 0.999 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestSLOBurnRateMath(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	s, _ := sloAt(SLOConfig{LatencyObjective: 100 * time.Millisecond, LatencyTarget: 0.99, AvailabilityTarget: 0.999}, t0)
	// 100 requests: 2 slow, 1 failed.
	for i := 0; i < 97; i++ {
		s.Observe(10*time.Millisecond, true)
	}
	s.Observe(200*time.Millisecond, true)
	s.Observe(300*time.Millisecond, true)
	s.Observe(50*time.Millisecond, false)

	snap := s.Snapshot()
	if snap.Total != 100 || snap.LatencyBreaches != 2 || snap.AvailabilityFails != 1 {
		t.Fatalf("lifetime totals = %+v", snap)
	}
	if len(snap.Windows) != 2 || snap.Windows[0].Window != "5m" || snap.Windows[1].Window != "1h" {
		t.Fatalf("windows = %+v", snap.Windows)
	}
	for _, w := range snap.Windows {
		// error rate 0.02 over budget 0.01 → burn 2.0
		if !approx(w.LatencyBurnRate, 2.0, 1e-9) {
			t.Errorf("%s latency burn = %v, want 2.0", w.Window, w.LatencyBurnRate)
		}
		// error rate 0.01 over budget 0.001 → burn 10.0
		if !approx(w.AvailabilityBurnRate, 10.0, 1e-9) {
			t.Errorf("%s availability burn = %v, want 10.0", w.Window, w.AvailabilityBurnRate)
		}
	}
	if snap.LatencyAlert || snap.AvailabilityAlert {
		t.Error("alerts fired below the fast-burn threshold")
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	s, now := sloAt(SLOConfig{}, t0)
	for i := 0; i < 10; i++ {
		s.Observe(time.Second, false) // slow and failed
	}
	if snap := s.Snapshot(); snap.Windows[0].LatencyBurnRate == 0 {
		t.Fatal("burn rate zero right after bad requests")
	}
	// Six minutes later the 5m window is clean, the 1h window still burns.
	*now = t0.Add(6 * time.Minute)
	snap := s.Snapshot()
	if snap.Windows[0].Total != 0 || snap.Windows[0].LatencyBurnRate != 0 {
		t.Errorf("5m window not empty after expiry: %+v", snap.Windows[0])
	}
	if snap.Windows[1].Total != 10 || snap.Windows[1].LatencyBurnRate == 0 {
		t.Errorf("1h window lost its history: %+v", snap.Windows[1])
	}
	// 61 minutes later both windows are clean; lifetime totals persist.
	*now = t0.Add(61 * time.Minute)
	snap = s.Snapshot()
	if snap.Windows[1].Total != 0 || snap.Windows[1].AvailabilityBurnRate != 0 {
		t.Errorf("1h window not empty after expiry: %+v", snap.Windows[1])
	}
	if snap.Total != 10 || snap.AvailabilityFails != 10 {
		t.Errorf("lifetime totals lost: %+v", snap)
	}
}

func TestSLOMultiWindowAlert(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	s, _ := sloAt(SLOConfig{AvailabilityTarget: 0.999}, t0)
	// Every request fails: burn = 1/0.001 = 1000 in both windows.
	for i := 0; i < 20; i++ {
		s.Observe(time.Millisecond, false)
	}
	snap := s.Snapshot()
	if !snap.AvailabilityAlert {
		t.Errorf("availability alert not firing at burn %v", snap.Windows[0].AvailabilityBurnRate)
	}
}

func TestSLOBindExposition(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	s, _ := sloAt(SLOConfig{}, t0)
	s.Observe(time.Second, false)
	reg := NewRegistry()
	s.Bind(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`mp_slo_latency_burn_rate{window="5m"}`,
		`mp_slo_latency_burn_rate{window="1h"}`,
		`mp_slo_availability_burn_rate{window="5m"}`,
		"mp_slo_requests_total 1",
		"mp_slo_latency_breaches_total 1",
		"mp_slo_availability_failures_total 1",
		"mp_slo_latency_objective_seconds 0.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSLONilSafety(t *testing.T) {
	var s *SLO
	s.Observe(time.Second, false)
	if snap := s.Snapshot(); snap.Total != 0 {
		t.Error("nil SLO reported state")
	}
	s.Bind(NewRegistry())
	if s.Config() != (SLOConfig{}) {
		t.Error("nil SLO config nonzero")
	}
}

func approx(got, want, eps float64) bool {
	d := got - want
	return d < eps && d > -eps
}
