package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", Labels{"db": "a"})
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Same (name, labels) resolves to the same metric.
	if r.Counter("requests_total", Labels{"db": "a"}) != c {
		t.Error("counter lookup not idempotent")
	}
	// Different labels are a different series.
	if r.Counter("requests_total", Labels{"db": "b"}) == c {
		t.Error("label sets must give distinct series")
	}

	g := r.Gauge("queue_depth", nil)
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Errorf("gauge = %v, want 2", g.Value())
	}
}

func TestRegistryNilIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x", nil).Inc()
	r.Gauge("y", nil).Set(1)
	r.Histogram("z", nil).Observe(1)
	r.CounterFunc("w", nil, func() float64 { return 1 })
	r.Help("x", "help")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil registry exposition: %q err=%v", sb.String(), err)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", nil)
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", nil)
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Help("probes_total", "Live probes issued.")
	r.Counter("probes_total", Labels{"db": "PubMed"}).Add(3)
	r.Counter("probes_total", Labels{"db": "CNN"}).Inc()
	r.Gauge("up", nil).Set(1)
	h := r.Histogram("search_latency_seconds", Labels{"db": "PubMed"})
	for i := 0; i < 100; i++ {
		h.Observe(0.010)
	}
	r.CounterFunc("cache_hits_total", Labels{"db": "PubMed"}, func() float64 { return 42 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP probes_total Live probes issued.",
		"# TYPE probes_total counter",
		`probes_total{db="PubMed"} 3`,
		`probes_total{db="CNN"} 1`,
		"# TYPE up gauge",
		"up 1",
		"# TYPE search_latency_seconds summary",
		`search_latency_seconds{db="PubMed",quantile="0.5"} 0.01`,
		`search_latency_seconds{db="PubMed",quantile="0.99"} 0.01`,
		`search_latency_seconds_sum{db="PubMed"} `,
		`search_latency_seconds_count{db="PubMed"} 100`,
		`cache_hits_total{db="PubMed"} 42`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families must be sorted, so the output is deterministic.
	if strings.Index(out, "cache_hits_total") > strings.Index(out, "probes_total") {
		t.Error("families not sorted by name")
	}
	// Every non-comment line is "name{labels} value", optionally
	// followed by an OpenMetrics exemplar section
	// ("# {trace_id=...} value timestamp" on _bucket lines).
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sample, exemplar, hasExemplar := strings.Cut(line, " # ")
		if len(strings.Fields(sample)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
		if hasExemplar && (len(strings.Fields(exemplar)) != 3 || !strings.HasPrefix(exemplar, "{")) {
			t.Errorf("malformed exemplar section %q", line)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", Labels{"q": "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `m{q="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaped label: got %q, want to contain %q", sb.String(), want)
	}
}

func TestLabelEscapingPerCharacter(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `m{q="plain"} 1`},
		{`a"b`, `m{q="a\"b"} 1`},
		{`a\b`, `m{q="a\\b"} 1`},
		{"a\nb", `m{q="a\nb"} 1`},
		{`\`, `m{q="\\"} 1`},
		{``, `m{q=""} 1`},
	}
	for _, tc := range cases {
		r := NewRegistry()
		r.Counter("m", Labels{"q": tc.in}).Inc()
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), tc.want) {
			t.Errorf("label %q: got %q, want to contain %q", tc.in, sb.String(), tc.want)
		}
	}
}

func TestLabelOrderingDeterministic(t *testing.T) {
	// Multiple labels render sorted by key regardless of map iteration
	// order, so series identity is stable across scrapes.
	r := NewRegistry()
	r.Counter("m", Labels{"zeta": "1", "alpha": "2", "mid": "3"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `m{alpha="2",mid="3",zeta="1"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("got %q, want to contain %q", sb.String(), want)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := Labels{"db": string(rune('a' + w%3))}
			for i := 0; i < 500; i++ {
				r.Counter("c", lbl).Inc()
				r.Histogram("h", lbl).Observe(0.001)
				r.Gauge("g", lbl).Set(float64(i))
			}
		}(w)
	}
	// Exposition runs concurrently with writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	var total int64
	for _, db := range []string{"a", "b", "c"} {
		total += r.Counter("c", Labels{"db": db}).Value()
	}
	if total != 8*500 {
		t.Errorf("total counter = %d, want %d", total, 8*500)
	}
}
