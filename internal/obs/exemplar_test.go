package obs

import (
	"math"
	"strings"
	"testing"
)

func TestObserveExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sel_latency_seconds", Labels{"policy": "greedy"})
	h.Observe(0.004) // plain observation: no exemplar attached
	h.ObserveExemplar(0.030, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.ObserveExemplar(42.0, "aaaabbbbccccddddeeeeffff00001111") // +Inf slot

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Summary exposition stays intact.
	for _, want := range []string{
		"# TYPE sel_latency_seconds summary",
		`sel_latency_seconds{policy="greedy",quantile="0.5"}`,
		`sel_latency_seconds_count{policy="greedy"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Bucket ladder with exemplars rides along.
	if !strings.Contains(out, `sel_latency_seconds_bucket{policy="greedy",le="0.05"} 2 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.03 `) {
		t.Errorf("missing exemplar bucket line in:\n%s", out)
	}
	if !strings.Contains(out, `sel_latency_seconds_bucket{policy="greedy",le="+Inf"} 3 # {trace_id="aaaabbbbccccddddeeeeffff00001111"} 42 `) {
		t.Errorf("missing +Inf exemplar line in:\n%s", out)
	}
}

func TestExemplarFreeHistogramKeepsSummaryOnly(t *testing.T) {
	r := NewRegistry()
	r.Histogram("plain_seconds", nil).Observe(0.01)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "_bucket") {
		t.Errorf("histogram without exemplars emitted bucket lines:\n%s", sb.String())
	}
}

func TestExemplarSlotReplacement(t *testing.T) {
	h := NewHistogram()
	h.ObserveExemplar(0.02, "first0000000000000000000000000000")
	h.ObserveExemplar(0.021, "second000000000000000000000000000")
	exs := h.Exemplars()
	if exs == nil {
		t.Fatal("no exemplars recorded")
	}
	slot := exemplarSlot(0.02)
	if exs[slot].TraceID != "second000000000000000000000000000" {
		t.Errorf("slot holds %q, want the most recent exemplar", exs[slot].TraceID)
	}
	if exs[slot].Value != 0.021 || exs[slot].Time.IsZero() {
		t.Errorf("exemplar = %+v", exs[slot])
	}
	// Empty trace IDs never record.
	h2 := NewHistogram()
	h2.ObserveExemplar(0.5, "")
	if h2.Exemplars() != nil {
		t.Error("empty trace ID recorded an exemplar")
	}
	if h2.Count() != 1 {
		t.Error("ObserveExemplar must still count the observation")
	}
}

func TestCountAtOrBelowMonotone(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{0.0005, 0.003, 0.04, 0.2, 3, 100} {
		h.Observe(v)
	}
	var prev int64 = -1
	for _, le := range exemplarBounds {
		c := h.countAtOrBelow(le)
		if c < prev {
			t.Errorf("cumulative count decreased at le=%v: %d < %d", le, c, prev)
		}
		prev = c
	}
	if got := h.countAtOrBelow(math.Inf(1)); got != 6 {
		t.Errorf("countAtOrBelow(+Inf) = %d, want 6", got)
	}
}

func TestNopHistogramExemplar(t *testing.T) {
	var r *Registry
	h := r.Histogram("x", nil)
	h.ObserveExemplar(0.1, "deadbeefdeadbeefdeadbeefdeadbeef")
	if h.Exemplars() != nil {
		t.Error("nop histogram stored an exemplar")
	}
}
