package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingTracerKeepsLastN(t *testing.T) {
	rt := NewRingTracer(3)
	for i := 0; i < 5; i++ {
		rt.TraceSelection(SelectionTrace{Query: fmt.Sprintf("q%d", i)})
	}
	got := rt.Last(0)
	if len(got) != 3 {
		t.Fatalf("retained %d traces, want 3", len(got))
	}
	// Newest first.
	for i, want := range []string{"q4", "q3", "q2"} {
		if got[i].Query != want {
			t.Errorf("Last[%d] = %q, want %q", i, got[i].Query, want)
		}
	}
	if rt.Total() != 5 {
		t.Errorf("Total = %d, want 5", rt.Total())
	}
	if got := rt.Last(1); len(got) != 1 || got[0].Query != "q4" {
		t.Errorf("Last(1) = %+v", got)
	}
}

func TestRingTracerPartiallyFilled(t *testing.T) {
	rt := NewRingTracer(10)
	rt.TraceSelection(SelectionTrace{Query: "only"})
	got := rt.Last(0)
	if len(got) != 1 || got[0].Query != "only" {
		t.Errorf("Last = %+v", got)
	}
}

func TestRingTracerDefaultCapacity(t *testing.T) {
	rt := NewRingTracer(0)
	for i := 0; i < 100; i++ {
		rt.TraceSelection(SelectionTrace{})
	}
	if n := len(rt.Last(0)); n != 64 {
		t.Errorf("default capacity retained %d, want 64", n)
	}
}

func TestRingTracerConcurrent(t *testing.T) {
	rt := NewRingTracer(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rt.TraceSelection(SelectionTrace{Query: "q"})
				rt.Last(4)
			}
		}()
	}
	wg.Wait()
	if rt.Total() != 8*200 {
		t.Errorf("Total = %d", rt.Total())
	}
}

func TestMultiTracerFansOut(t *testing.T) {
	a, b := NewRingTracer(2), NewRingTracer(2)
	mt := MultiTracer{a, nil, b}
	mt.TraceSelection(SelectionTrace{Query: "q"})
	if a.Total() != 1 || b.Total() != 1 {
		t.Errorf("fan-out totals: %d, %d", a.Total(), b.Total())
	}
}

func TestTraceHandlerServesJSON(t *testing.T) {
	rt := NewRingTracer(8)
	rt.TraceSelection(SelectionTrace{
		Time:      time.Unix(1, 0),
		Query:     "breast cancer",
		K:         2,
		Metric:    "absolute",
		Threshold: 0.9,
		Selected:  []string{"onco"},
		Certainty: 0.93,
		Reached:   true,
		Probes: []ProbeTrace{
			{DB: "onco", Index: 0, Usefulness: 0.84, Value: 130, CertaintyAfter: 0.93},
		},
	})
	srv := httptest.NewServer(TraceHandler(rt))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/?n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var traces []SelectionTrace
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].Query != "breast cancer" || len(traces[0].Probes) != 1 {
		t.Errorf("decoded traces = %+v", traces)
	}
	if traces[0].Probes[0].Usefulness != 0.84 {
		t.Errorf("probe trace = %+v", traces[0].Probes[0])
	}
	// Successful probes omit the Err field from the JSON entirely.
	raw, _ := json.Marshal(traces[0].Probes[0])
	if strings.Contains(string(raw), `"Err"`) {
		t.Errorf("empty Err should be omitted: %s", raw)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", nil).Inc()
	srv := httptest.NewServer(MetricsHandler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "x_total 1") {
		t.Errorf("metrics body = %q", string(body))
	}
}

func TestRingTracerDropped(t *testing.T) {
	rt := NewRingTracer(3)
	if rt.Dropped() != 0 {
		t.Errorf("Dropped = %d before any trace", rt.Dropped())
	}
	for i := 0; i < 2; i++ {
		rt.TraceSelection(SelectionTrace{})
	}
	if rt.Dropped() != 0 {
		t.Errorf("Dropped = %d while under capacity", rt.Dropped())
	}
	for i := 0; i < 5; i++ {
		rt.TraceSelection(SelectionTrace{})
	}
	// 7 recorded, 3 retained.
	if rt.Dropped() != 4 {
		t.Errorf("Dropped = %d, want 4", rt.Dropped())
	}
}

func TestRingTracerBind(t *testing.T) {
	rt := NewRingTracer(2)
	reg := NewRegistry()
	rt.Bind(reg)
	for i := 0; i < 5; i++ {
		rt.TraceSelection(SelectionTrace{})
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"metaprobe_traces_recorded_total 5",
		"metaprobe_traces_dropped_total 3",
		"# HELP metaprobe_traces_recorded_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Bind is nil-tolerant on both sides.
	rt.Bind(nil)
	var nilRT *RingTracer
	nilRT.Bind(reg)
}
