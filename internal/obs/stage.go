package obs

import (
	"sort"
	"sync"
)

// StageTotals accumulates one hot-path stage's contribution to a
// selection: total wall time, total heap objects allocated while the
// stage ran, and how many intervals were recorded.
type StageTotals struct {
	Seconds float64 `json:"seconds"`
	Allocs  uint64  `json:"allocs"`
	Count   int64   `json:"count"`
}

// StageRecorder aggregates per-stage timings for one selection. Its
// Observe method matches core.StageObserver, so metaprobe binds one
// recorder per selection via Selection.WithStageObserver, then
// flushes the totals into the mp_selection_stage_* histograms and the
// root span's events when the selection ends. A mutex (not atomics)
// keeps it simple: stages are recorded a handful of times per probe
// step, far off any fast path.
type StageRecorder struct {
	mu     sync.Mutex
	totals map[string]*StageTotals
}

// NewStageRecorder returns an empty recorder.
func NewStageRecorder() *StageRecorder {
	return &StageRecorder{totals: make(map[string]*StageTotals)}
}

// Observe records one stage interval (signature-compatible with
// core.StageObserver). Safe on a nil recorder.
func (r *StageRecorder) Observe(stage string, seconds float64, allocs uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	t, ok := r.totals[stage]
	if !ok {
		t = &StageTotals{}
		r.totals[stage] = t
	}
	t.Seconds += seconds
	t.Allocs += allocs
	t.Count++
	r.mu.Unlock()
}

// Totals returns a copy of the accumulated per-stage totals.
func (r *StageRecorder) Totals() map[string]StageTotals {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]StageTotals, len(r.totals))
	for k, v := range r.totals {
		out[k] = *v
	}
	return out
}

// Stages returns the recorded stage names in sorted order, for
// deterministic flushing (metrics series and span events come out in
// the same order every selection).
func (r *StageRecorder) Stages() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.totals))
	for k := range r.totals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
