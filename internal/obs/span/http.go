package span

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the span store — mount it at /debug/spans.
//
//	GET /debug/spans            → recent trace summaries, newest first
//	GET /debug/spans?n=20       → at most 20 summaries
//	GET /debug/spans?trace=<id> → the span tree of one trace
//	GET /debug/spans?trace=<id>&format=otlp → the same trace as OTLP JSON
//
// An unknown (or already evicted) trace ID answers 404.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		writeJSON := func(v any) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(v); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
		if id := q.Get("trace"); id != "" {
			if q.Get("format") == "otlp" {
				if len(t.TraceSpans(id)) == 0 {
					http.Error(w, "unknown trace", http.StatusNotFound)
					return
				}
				writeJSON(t.OTLP(id, "metaprobe"))
				return
			}
			tree := t.Tree(id)
			if tree == nil {
				http.Error(w, "unknown trace", http.StatusNotFound)
				return
			}
			writeJSON(map[string]any{"traceId": id, "spans": tree})
			return
		}
		n := 50
		if s := q.Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		writeJSON(map[string]any{
			"recorded": t.Recorded(),
			"dropped":  t.Dropped(),
			"traces":   t.Traces(n),
		})
	})
}
