// Package span is a zero-dependency hierarchical span tracer for the
// metaprobe request path. It deliberately mirrors the shape of
// OpenTelemetry tracing — W3C-style 16-byte trace IDs and 8-byte span
// IDs, parent/child links carried through context.Context, events and
// string attributes on each span — without importing anything beyond
// the standard library. Finished spans land in a bounded in-memory
// ring store; overflow evicts the oldest span and increments a dropped
// counter. The store can render a whole trace as a tree or export it
// as OTLP-compatible JSON, so traces can be pasted into any OTLP
// viewer.
//
// Everything is nil-tolerant: a nil *Tracer and a nil *Span no-op on
// every method, so instrumented code needs no "is tracing on?" guards.
// Downstream packages create child spans with the package-level
// Start(ctx, name): it only records when an ancestor span is already
// in ctx, which keeps the tracer handle out of every config struct.
package span

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxEventsPerSpan bounds the event list of a single span so a hot
// loop annotating one span cannot grow it without limit. Overflow is
// counted and surfaced as a "dropped_events" attribute at End.
const maxEventsPerSpan = 64

// DefaultCapacity is the span-store size used when NewTracer is given
// a non-positive capacity.
const DefaultCapacity = 8192

// Event is a timestamped point annotation on a span.
type Event struct {
	Time  time.Time         `json:"time"`
	Name  string            `json:"name"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Span is one timed operation in a trace. Fields are exported for JSON
// rendering; mutate only through the methods, which are safe for
// concurrent use (hedged attempts annotate their parent from multiple
// goroutines).
type Span struct {
	TraceID   string            `json:"traceId"`
	SpanID    string            `json:"spanId"`
	ParentID  string            `json:"parentSpanId,omitempty"`
	Name      string            `json:"name"`
	StartTime time.Time         `json:"start"`
	EndTime   time.Time         `json:"end"`
	Attrs     map[string]string `json:"attrs,omitempty"`
	Events    []Event           `json:"events,omitempty"`
	Error     string            `json:"error,omitempty"`

	tracer        *Tracer
	mu            sync.Mutex
	ended         bool
	droppedEvents int
}

// Tracer creates spans and stores the finished ones in a bounded ring.
type Tracer struct {
	mu       sync.Mutex
	ring     []*Span
	next     int
	recorded atomic.Int64
	dropped  atomic.Int64
}

// NewTracer returns a tracer retaining the most recent capacity
// finished spans (DefaultCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{ring: make([]*Span, 0, capacity)}
}

type ctxKey struct{}

// FromContext returns the innermost span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start opens a span named name. If ctx already carries a span, the
// new span is its child and shares the trace ID; otherwise it is a new
// root with a fresh trace ID. The returned context carries the new
// span for further nesting. A nil tracer returns ctx unchanged and a
// nil span.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{
		SpanID:    newSpanID(),
		Name:      name,
		StartTime: time.Now(),
		tracer:    t,
	}
	if parent := FromContext(ctx); parent != nil {
		s.TraceID = parent.TraceID
		s.ParentID = parent.SpanID
	} else {
		s.TraceID = newTraceID()
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// Start opens a child of the span carried by ctx, using that span's
// tracer. When ctx carries no span (tracing disabled upstream) it
// returns ctx unchanged and a nil span, so call sites never branch.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	return parent.tracer.Start(ctx, name)
}

// newTraceID returns 16 random bytes in lowercase hex (32 chars).
func newTraceID() string {
	return fmt.Sprintf("%016x%016x", rand.Uint64(), rand.Uint64())
}

// newSpanID returns 8 random bytes in lowercase hex (16 chars).
func newSpanID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// SetAttr sets a string attribute. No-op on a nil or ended span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[key] = value
}

// AddEvent appends a timestamped event; kv is alternating key/value
// pairs for its attributes. Events past maxEventsPerSpan are dropped
// and counted.
func (s *Span) AddEvent(name string, kv ...string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if len(s.Events) >= maxEventsPerSpan {
		s.droppedEvents++
		return
	}
	ev := Event{Time: time.Now(), Name: name}
	if len(kv) >= 2 {
		ev.Attrs = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			ev.Attrs[kv[i]] = kv[i+1]
		}
	}
	s.Events = append(s.Events, ev)
}

// EndErr ends the span, recording err (if any) on it first.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.mu.Lock()
		if !s.ended {
			s.Error = err.Error()
		}
		s.mu.Unlock()
	}
	s.End()
}

// End closes the span and hands it to the tracer's store. Calling it
// more than once is safe; only the first call records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.EndTime = time.Now()
	if s.droppedEvents > 0 {
		if s.Attrs == nil {
			s.Attrs = make(map[string]string, 1)
		}
		s.Attrs["dropped_events"] = fmt.Sprint(s.droppedEvents)
	}
	s.mu.Unlock()
	s.tracer.record(s)
}

// Duration returns the span's elapsed time once ended, 0 otherwise.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return 0
	}
	return s.EndTime.Sub(s.StartTime)
}

// Trace returns the span's trace ID ("" on nil).
func (s *Span) Trace() string {
	if s == nil {
		return ""
	}
	return s.TraceID
}

// record stores a finished span, evicting the oldest on overflow.
func (t *Tracer) record(s *Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next = (t.next + 1) % cap(t.ring)
		t.dropped.Add(1)
	}
	t.mu.Unlock()
	t.recorded.Add(1)
}

// Recorded returns the number of spans ever stored.
func (t *Tracer) Recorded() int64 {
	if t == nil {
		return 0
	}
	return t.recorded.Load()
}

// Dropped returns the number of spans evicted due to store overflow.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// snapshot copies the stored spans, oldest first.
func (t *Tracer) snapshot() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// TraceSpans returns every stored span of the given trace, sorted by
// start time. Returns nil when the trace is unknown (or evicted).
func (t *Tracer) TraceSpans(traceID string) []*Span {
	if t == nil || traceID == "" {
		return nil
	}
	var out []*Span
	for _, s := range t.snapshot() {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartTime.Before(out[j].StartTime) })
	return out
}

// TraceSummary describes one trace held in the store.
type TraceSummary struct {
	TraceID    string        `json:"traceId"`
	Root       string        `json:"root"`
	Start      time.Time     `json:"start"`
	Duration   time.Duration `json:"-"`
	DurationMs float64       `json:"durationMs"`
	Spans      int           `json:"spans"`
	Error      string        `json:"error,omitempty"`
}

// Traces summarises the most recent n traces in the store, newest
// first. n <= 0 means all.
func (t *Tracer) Traces(n int) []TraceSummary {
	if t == nil {
		return nil
	}
	byID := make(map[string]*TraceSummary)
	var order []string
	for _, s := range t.snapshot() {
		sum, ok := byID[s.TraceID]
		if !ok {
			sum = &TraceSummary{TraceID: s.TraceID, Start: s.StartTime}
			byID[s.TraceID] = sum
			order = append(order, s.TraceID)
		}
		sum.Spans++
		if s.StartTime.Before(sum.Start) {
			sum.Start = s.StartTime
		}
		if s.ParentID == "" {
			sum.Root = s.Name
			sum.Duration = s.EndTime.Sub(s.StartTime)
			sum.DurationMs = float64(sum.Duration) / float64(time.Millisecond)
			sum.Error = s.Error
		}
	}
	out := make([]TraceSummary, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		out = append(out, *byID[order[i]])
		if n > 0 && len(out) >= n {
			break
		}
	}
	return out
}
