package span

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"metaprobe/internal/obs"
)

var (
	traceIDRe = regexp.MustCompile(`^[0-9a-f]{32}$`)
	spanIDRe  = regexp.MustCompile(`^[0-9a-f]{16}$`)
)

func TestStartParenting(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.Start(context.Background(), "selection")
	if root == nil {
		t.Fatal("nil root span")
	}
	if !traceIDRe.MatchString(root.TraceID) {
		t.Errorf("trace ID %q not 32 hex chars", root.TraceID)
	}
	if !spanIDRe.MatchString(root.SpanID) {
		t.Errorf("span ID %q not 16 hex chars", root.SpanID)
	}
	if root.ParentID != "" {
		t.Errorf("root has parent %q", root.ParentID)
	}

	cctx, child := Start(ctx, "probe")
	if child.TraceID != root.TraceID {
		t.Errorf("child trace %q != root trace %q", child.TraceID, root.TraceID)
	}
	if child.ParentID != root.SpanID {
		t.Errorf("child parent %q != root span %q", child.ParentID, root.SpanID)
	}
	_, grand := Start(cctx, "attempt")
	if grand.ParentID != child.SpanID {
		t.Errorf("grandchild parent %q != child span %q", grand.ParentID, child.SpanID)
	}
	grand.End()
	child.End()
	root.End()
	if got := tr.Recorded(); got != 3 {
		t.Errorf("recorded = %d, want 3", got)
	}
	spans := tr.TraceSpans(root.TraceID)
	if len(spans) != 3 {
		t.Fatalf("TraceSpans returned %d spans, want 3", len(spans))
	}
	if spans[0].Name != "selection" {
		t.Errorf("first span by start time = %q, want selection", spans[0].Name)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.Start(context.Background(), "x")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	// All of these must no-op without panicking.
	s.SetAttr("k", "v")
	s.AddEvent("e", "a", "b")
	s.EndErr(errors.New("boom"))
	s.End()
	if s.Duration() != 0 || s.Trace() != "" {
		t.Error("nil span reported nonzero state")
	}
	if _, c := Start(ctx, "child"); c != nil {
		t.Error("Start without ambient span returned a span")
	}
	if tr.Recorded() != 0 || tr.Dropped() != 0 || tr.TraceSpans("ff") != nil {
		t.Error("nil tracer reported state")
	}
	tr.Bind(nil)
	if FromContext(nil) != nil {
		t.Error("FromContext(nil) != nil")
	}
}

func TestAttrsEventsAndError(t *testing.T) {
	tr := NewTracer(16)
	_, s := tr.Start(context.Background(), "op")
	s.SetAttr("db", "PubMed")
	s.AddEvent("retry", "attempt", "2")
	s.EndErr(errors.New("backend down"))
	// Mutation after End must not stick.
	s.SetAttr("late", "x")
	s.AddEvent("late")

	got := tr.TraceSpans(s.TraceID)[0]
	if got.Attrs["db"] != "PubMed" {
		t.Errorf("attr db = %q", got.Attrs["db"])
	}
	if _, ok := got.Attrs["late"]; ok {
		t.Error("attr set after End was recorded")
	}
	if len(got.Events) != 1 || got.Events[0].Name != "retry" || got.Events[0].Attrs["attempt"] != "2" {
		t.Errorf("events = %+v", got.Events)
	}
	if got.Error != "backend down" {
		t.Errorf("error = %q", got.Error)
	}
	if got.Duration() <= 0 {
		t.Error("ended span has non-positive duration")
	}
}

func TestEventCap(t *testing.T) {
	tr := NewTracer(4)
	_, s := tr.Start(context.Background(), "op")
	for i := 0; i < maxEventsPerSpan+5; i++ {
		s.AddEvent("e")
	}
	s.End()
	got := tr.TraceSpans(s.TraceID)[0]
	if len(got.Events) != maxEventsPerSpan {
		t.Errorf("events = %d, want cap %d", len(got.Events), maxEventsPerSpan)
	}
	if got.Attrs["dropped_events"] != "5" {
		t.Errorf("dropped_events attr = %q, want 5", got.Attrs["dropped_events"])
	}
}

func TestStoreOverflowIncrementsDropped(t *testing.T) {
	tr := NewTracer(8)
	var lastTrace string
	for i := 0; i < 20; i++ {
		_, s := tr.Start(context.Background(), "op")
		lastTrace = s.TraceID
		s.End()
	}
	if got := tr.Dropped(); got != 12 {
		t.Errorf("dropped = %d, want 12", got)
	}
	if got := tr.Recorded(); got != 20 {
		t.Errorf("recorded = %d, want 20", got)
	}
	if len(tr.TraceSpans(lastTrace)) != 1 {
		t.Error("newest span evicted instead of oldest")
	}
	if got := len(tr.Traces(0)); got != 8 {
		t.Errorf("retained traces = %d, want 8", got)
	}

	reg := obs.NewRegistry()
	tr.Bind(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mp_spans_recorded_total 20", "mp_spans_dropped_total 12"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentChildrenUnderRace(t *testing.T) {
	tr := NewTracer(256)
	ctx, root := tr.Start(context.Background(), "root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cctx, c := Start(ctx, "child")
			c.SetAttr("k", "v")
			root.AddEvent("spawned")
			_, g := Start(cctx, "grandchild")
			g.End()
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	spans := tr.TraceSpans(root.TraceID)
	if len(spans) != 33 {
		t.Fatalf("got %d spans, want 33", len(spans))
	}
	for _, s := range spans {
		if s.TraceID != root.TraceID {
			t.Errorf("span %s escaped the trace", s.Name)
		}
	}
}

func TestTreeAndFlatten(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.Start(context.Background(), "selection")
	cctx, probe := Start(ctx, "probe")
	_, attempt := Start(cctx, "attempt")
	attempt.End()
	probe.End()
	root.End()

	roots := tr.Tree(root.TraceID)
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	r := roots[0]
	if r.Name != "selection" || r.Depth != 0 {
		t.Errorf("root = %q depth %d", r.Name, r.Depth)
	}
	if len(r.Children) != 1 || r.Children[0].Name != "probe" || r.Children[0].Depth != 1 {
		t.Fatalf("root children = %+v", r.Children)
	}
	if len(r.Children[0].Children) != 1 || r.Children[0].Children[0].Depth != 2 {
		t.Fatalf("probe children wrong")
	}
	flat := Flatten(roots)
	if len(flat) != 3 || flat[0].Name != "selection" || flat[1].Name != "probe" || flat[2].Name != "attempt" {
		names := make([]string, len(flat))
		for i, n := range flat {
			names[i] = n.Name
		}
		t.Errorf("flatten order = %v", names)
	}
	if tr.Tree("feedfacefeedfacefeedfacefeedface") != nil {
		t.Error("unknown trace returned a tree")
	}
}

func TestOTLPShape(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.Start(context.Background(), "selection")
	root.SetAttr("query", "cancer")
	_, child := Start(ctx, "probe")
	child.AddEvent("hedge_launched")
	child.EndErr(errors.New("timeout"))
	root.End()

	doc := tr.OTLP(root.TraceID, "metaprobe")
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					TraceID           string `json:"traceId"`
					SpanID            string `json:"spanId"`
					ParentSpanID      string `json:"parentSpanId"`
					Name              string `json:"name"`
					StartTimeUnixNano string `json:"startTimeUnixNano"`
					EndTimeUnixNano   string `json:"endTimeUnixNano"`
					Status            *struct {
						Code int `json:"code"`
					} `json:"status"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	spans := parsed.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) != 2 {
		t.Fatalf("otlp spans = %d, want 2", len(spans))
	}
	if spans[0].Name != "selection" || spans[0].ParentSpanID != "" {
		t.Errorf("otlp root = %+v", spans[0])
	}
	if spans[1].ParentSpanID != root.SpanID {
		t.Errorf("otlp child parent = %q", spans[1].ParentSpanID)
	}
	if spans[1].Status == nil || spans[1].Status.Code != 2 {
		t.Errorf("otlp child status = %+v", spans[1].Status)
	}
	if spans[0].StartTimeUnixNano == "" || spans[0].EndTimeUnixNano == "" {
		t.Error("otlp timestamps empty")
	}
}

func TestHandler(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.Start(context.Background(), "selection")
	_, c := Start(ctx, "probe")
	c.End()
	root.End()

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}

	rec := get("/debug/spans")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), root.TraceID) {
		t.Errorf("list: code=%d body=%s", rec.Code, rec.Body.String())
	}
	rec = get("/debug/spans?trace=" + root.TraceID)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"probe"`) {
		t.Errorf("trace: code=%d body=%s", rec.Code, rec.Body.String())
	}
	rec = get("/debug/spans?trace=" + root.TraceID + "&format=otlp")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "resourceSpans") {
		t.Errorf("otlp: code=%d", rec.Code)
	}
	if rec := get("/debug/spans?trace=feedfacefeedfacefeedfacefeedface"); rec.Code != 404 {
		t.Errorf("unknown trace: code=%d, want 404", rec.Code)
	}
	if rec := get("/debug/spans?n=bogus"); rec.Code != 400 {
		t.Errorf("bad n: code=%d, want 400", rec.Code)
	}
}
