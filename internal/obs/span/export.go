package span

import (
	"sort"
	"strconv"
	"time"

	"metaprobe/internal/obs"
)

// Bind exports the tracer's store counters to reg as
// mp_spans_recorded_total and mp_spans_dropped_total. A nil tracer or
// registry is fine.
func (t *Tracer) Bind(reg *obs.Registry) {
	if t == nil || reg == nil {
		return
	}
	reg.Help("mp_spans_recorded_total", "Finished spans stored by the span tracer.")
	reg.Help("mp_spans_dropped_total", "Finished spans evicted from the bounded span store.")
	reg.CounterFunc("mp_spans_recorded_total", nil, func() float64 { return float64(t.Recorded()) })
	reg.CounterFunc("mp_spans_dropped_total", nil, func() float64 { return float64(t.Dropped()) })
}

// Node is one span in a rendered trace tree, with timings relative to
// the trace root for waterfall display.
type Node struct {
	*Span
	OffsetMs   float64 `json:"offsetMs"`
	DurationMs float64 `json:"durationMs"`
	Depth      int     `json:"depth"`
	Children   []*Node `json:"children,omitempty"`
}

// Tree assembles the stored spans of traceID into a parent/child tree.
// Spans whose parent has been evicted from the store are promoted to
// extra roots so a partially-retained trace still renders. Returns nil
// for an unknown trace.
func (t *Tracer) Tree(traceID string) []*Node {
	spans := t.TraceSpans(traceID)
	if len(spans) == 0 {
		return nil
	}
	origin := spans[0].StartTime
	nodes := make(map[string]*Node, len(spans))
	for _, s := range spans {
		nodes[s.SpanID] = &Node{
			Span:       s,
			OffsetMs:   float64(s.StartTime.Sub(origin)) / float64(time.Millisecond),
			DurationMs: float64(s.EndTime.Sub(s.StartTime)) / float64(time.Millisecond),
		}
	}
	var roots []*Node
	for _, s := range spans { // keep start-time order within siblings
		n := nodes[s.SpanID]
		if p, ok := nodes[s.ParentID]; ok && s.ParentID != "" {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var setDepth func(n *Node, d int)
	setDepth = func(n *Node, d int) {
		n.Depth = d
		for _, c := range n.Children {
			setDepth(c, d+1)
		}
	}
	for _, r := range roots {
		setDepth(r, 0)
	}
	return roots
}

// Flatten walks a trace tree depth-first, returning the rows in
// waterfall order (each parent immediately followed by its children).
func Flatten(roots []*Node) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return out
}

// OTLP renders the stored spans of traceID in the OTLP/JSON resource
// span shape (resourceSpans → scopeSpans → spans), so a trace can be
// fed to any OTLP-compatible viewer. Attribute values are all string
// typed; timestamps are unix-nano strings per the OTLP JSON encoding.
func (t *Tracer) OTLP(traceID, service string) map[string]any {
	spans := t.TraceSpans(traceID)
	out := make([]map[string]any, 0, len(spans))
	for _, s := range spans {
		o := map[string]any{
			"traceId":           s.TraceID,
			"spanId":            s.SpanID,
			"name":              s.Name,
			"kind":              1, // SPAN_KIND_INTERNAL
			"startTimeUnixNano": strconv.FormatInt(s.StartTime.UnixNano(), 10),
			"endTimeUnixNano":   strconv.FormatInt(s.EndTime.UnixNano(), 10),
		}
		if s.ParentID != "" {
			o["parentSpanId"] = s.ParentID
		}
		if len(s.Attrs) > 0 {
			o["attributes"] = otlpAttrs(s.Attrs)
		}
		if len(s.Events) > 0 {
			evs := make([]map[string]any, 0, len(s.Events))
			for _, e := range s.Events {
				ev := map[string]any{
					"timeUnixNano": strconv.FormatInt(e.Time.UnixNano(), 10),
					"name":         e.Name,
				}
				if len(e.Attrs) > 0 {
					ev["attributes"] = otlpAttrs(e.Attrs)
				}
				evs = append(evs, ev)
			}
			o["events"] = evs
		}
		if s.Error != "" {
			o["status"] = map[string]any{"code": 2, "message": s.Error} // STATUS_CODE_ERROR
		}
		out = append(out, o)
	}
	return map[string]any{
		"resourceSpans": []map[string]any{{
			"resource": map[string]any{
				"attributes": otlpAttrs(map[string]string{"service.name": service}),
			},
			"scopeSpans": []map[string]any{{
				"scope": map[string]any{"name": "metaprobe/internal/obs/span"},
				"spans": out,
			}},
		}},
	}
}

// otlpAttrs renders a string map as the OTLP keyValue list, sorted by
// key for stable output.
func otlpAttrs(attrs map[string]string) []map[string]any {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]map[string]any, 0, len(keys))
	for _, k := range keys {
		out = append(out, map[string]any{
			"key":   k,
			"value": map[string]any{"stringValue": attrs[k]},
		})
	}
	return out
}
