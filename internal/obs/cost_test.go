package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestCostAccountRoundTrip(t *testing.T) {
	acct := NewCostAccount()
	ctx := WithCost(context.Background(), acct)
	got := CostFromContext(ctx)
	if got != acct {
		t.Fatal("account did not round-trip through context")
	}
	if CostFromContext(context.Background()) != nil {
		t.Error("empty context returned an account")
	}

	got.AddProbe("PubMed", 30*time.Millisecond, false)
	got.AddProbe("PubMed", 10*time.Millisecond, true)
	got.AddProbe("CNN", 20*time.Millisecond, false)
	got.AddHedge()
	got.AddHedge()
	got.AddHedgeWin()
	got.AddCacheHit()
	got.AddBytes("PubMed", 2048)
	got.AddBytes("PubMed", 0) // ignored

	sum := acct.Summary()
	if sum.ProbesIssued != 3 {
		t.Errorf("probes = %d", sum.ProbesIssued)
	}
	if sum.HedgesLaunched != 2 || sum.HedgesWon != 1 || sum.HedgesWasted != 1 {
		t.Errorf("hedges = %+v", sum)
	}
	if sum.CacheHits != 1 || sum.BytesFetched != 2048 {
		t.Errorf("cache/bytes = %+v", sum)
	}
	if !approx(sum.WallMs, 60, 1e-9) {
		t.Errorf("wall = %v ms", sum.WallMs)
	}
	pm := sum.Backends["PubMed"]
	if pm.Probes != 2 || pm.Errors != 1 || pm.Bytes != 2048 || !approx(pm.WallMs, 40, 1e-9) {
		t.Errorf("PubMed backend = %+v", pm)
	}
	if cnn := sum.Backends["CNN"]; cnn.Probes != 1 || cnn.Errors != 0 {
		t.Errorf("CNN backend = %+v", cnn)
	}
}

func TestCostAccountNilSafety(t *testing.T) {
	var acct *CostAccount
	acct.AddProbe("x", time.Second, true)
	acct.AddHedge()
	acct.AddHedgeWin()
	acct.AddCacheHit()
	acct.AddBytes("x", 10)
	if sum := acct.Summary(); sum.ProbesIssued != 0 || sum.Backends != nil {
		t.Error("nil account reported state")
	}
	if ctx := WithCost(context.Background(), nil); CostFromContext(ctx) != nil {
		t.Error("WithCost(nil) attached something")
	}
}

func TestCostAccountConcurrent(t *testing.T) {
	acct := NewCostAccount()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				acct.AddProbe("db", time.Millisecond, false)
				acct.AddBytes("db", 1)
			}
		}()
	}
	wg.Wait()
	sum := acct.Summary()
	if sum.ProbesIssued != 800 || sum.BytesFetched != 800 {
		t.Errorf("summary = %+v", sum)
	}
}
