package obs

import (
	"sync"
	"time"
)

// SLOConfig defines the service-level objectives tracked by SLO.
type SLOConfig struct {
	// LatencyObjective is the per-request latency threshold; a request
	// slower than this breaches the latency objective (default 250ms).
	LatencyObjective time.Duration
	// LatencyTarget is the fraction of requests that must meet the
	// latency objective (default 0.99).
	LatencyTarget float64
	// AvailabilityTarget is the fraction of requests that must succeed
	// (default 0.999).
	AvailabilityTarget float64
}

// withDefaults fills zero fields.
func (c SLOConfig) withDefaults() SLOConfig {
	if c.LatencyObjective <= 0 {
		c.LatencyObjective = 250 * time.Millisecond
	}
	if c.LatencyTarget <= 0 || c.LatencyTarget >= 1 {
		c.LatencyTarget = 0.99
	}
	if c.AvailabilityTarget <= 0 || c.AvailabilityTarget >= 1 {
		c.AvailabilityTarget = 0.999
	}
	return c
}

// sloWindows are the burn-rate windows: the standard short/long pair
// for multi-window alerting (SRE workbook). The short window makes the
// alert fast to fire and fast to clear; the long window keeps it from
// flapping on a brief spike.
var sloWindows = []struct {
	name string
	secs int64
}{
	{"5m", 300},
	{"1h", 3600},
}

// fastBurnThreshold is the canonical paging threshold for the 5m/1h
// window pair: burning 14.4× the budget rate exhausts a 30-day error
// budget in about two days.
const fastBurnThreshold = 14.4

// sloBucket accumulates one second of request outcomes.
type sloBucket struct {
	sec   int64 // unix second this bucket currently represents
	total int64
	slow  int64 // latency objective breaches
	fail  int64 // availability failures
}

// SLO tracks latency and availability objectives over sliding windows
// and reports multi-window burn rates. Observations land in a ring of
// per-second buckets spanning the longest window (1h), so the tracker
// is O(1) per request and a few tens of KiB total. A nil *SLO no-ops,
// matching the registry's nil-tolerance convention.
type SLO struct {
	cfg SLOConfig
	now func() time.Time // injectable for tests

	mu      sync.Mutex
	buckets [3600]sloBucket
	// lifetime totals, for counters that must never move backwards
	total, slow, fail int64
}

// NewSLO returns a tracker for the given objectives.
func NewSLO(cfg SLOConfig) *SLO {
	return &SLO{cfg: cfg.withDefaults(), now: time.Now}
}

// Config returns the (defaulted) objectives.
func (s *SLO) Config() SLOConfig {
	if s == nil {
		return SLOConfig{}
	}
	return s.cfg
}

// Observe records one request outcome: its latency, and whether it
// succeeded (ok=false is an availability failure; its latency still
// counts against the latency objective).
func (s *SLO) Observe(latency time.Duration, ok bool) {
	if s == nil {
		return
	}
	sec := s.now().Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	b := &s.buckets[sec%int64(len(s.buckets))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	b.total++
	s.total++
	if latency > s.cfg.LatencyObjective {
		b.slow++
		s.slow++
	}
	if !ok {
		b.fail++
		s.fail++
	}
}

// SLOWindow is the burn-rate report for one sliding window.
type SLOWindow struct {
	Window               string  `json:"window"`
	Total                int64   `json:"total"`
	LatencyBreaches      int64   `json:"latency_breaches"`
	AvailabilityFailures int64   `json:"availability_failures"`
	LatencyBurnRate      float64 `json:"latency_burn_rate"`
	AvailabilityBurnRate float64 `json:"availability_burn_rate"`
}

// SLOSnapshot is the full SLO state served at /debug/slo.
type SLOSnapshot struct {
	LatencyObjectiveMs float64     `json:"latency_objective_ms"`
	LatencyTarget      float64     `json:"latency_target"`
	AvailabilityTarget float64     `json:"availability_target"`
	Total              int64       `json:"requests_total"`
	LatencyBreaches    int64       `json:"latency_breaches_total"`
	AvailabilityFails  int64       `json:"availability_failures_total"`
	Windows            []SLOWindow `json:"windows"`
	// Alerts fire on the multi-window rule: both the short and the
	// long window must burn above the fast-burn threshold, so a brief
	// spike (short only) or old stale errors (long only) do not page.
	LatencyAlert      bool `json:"latency_alert"`
	AvailabilityAlert bool `json:"availability_alert"`
}

// Snapshot computes burn rates over every configured window.
//
// Burn rate is the observed bad-event rate divided by the error budget
// (1 − target): burn 1.0 consumes the budget exactly at the rate it
// accrues; burn N exhausts it N× faster. A window with no traffic
// burns 0.
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	now := s.now().Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SLOSnapshot{
		LatencyObjectiveMs: float64(s.cfg.LatencyObjective) / float64(time.Millisecond),
		LatencyTarget:      s.cfg.LatencyTarget,
		AvailabilityTarget: s.cfg.AvailabilityTarget,
		Total:              s.total,
		LatencyBreaches:    s.slow,
		AvailabilityFails:  s.fail,
	}
	for _, w := range sloWindows {
		var win SLOWindow
		win.Window = w.name
		cutoff := now - w.secs
		for i := range s.buckets {
			b := &s.buckets[i]
			if b.sec > cutoff && b.sec <= now {
				win.Total += b.total
				win.LatencyBreaches += b.slow
				win.AvailabilityFailures += b.fail
			}
		}
		if win.Total > 0 {
			win.LatencyBurnRate = (float64(win.LatencyBreaches) / float64(win.Total)) / (1 - s.cfg.LatencyTarget)
			win.AvailabilityBurnRate = (float64(win.AvailabilityFailures) / float64(win.Total)) / (1 - s.cfg.AvailabilityTarget)
		}
		snap.Windows = append(snap.Windows, win)
	}
	lat, avail := true, true
	for _, w := range snap.Windows {
		lat = lat && w.LatencyBurnRate >= fastBurnThreshold
		avail = avail && w.AvailabilityBurnRate >= fastBurnThreshold
	}
	snap.LatencyAlert = lat
	snap.AvailabilityAlert = avail
	return snap
}

// Bind exports the tracker to reg as mp_slo_* series: per-window burn
// rate gauges plus lifetime outcome counters.
func (s *SLO) Bind(reg *Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.Help("mp_slo_latency_burn_rate", "Latency error-budget burn rate over the labeled window.")
	reg.Help("mp_slo_availability_burn_rate", "Availability error-budget burn rate over the labeled window.")
	reg.Help("mp_slo_requests_total", "Requests observed by the SLO tracker.")
	reg.Help("mp_slo_latency_breaches_total", "Requests slower than the latency objective.")
	reg.Help("mp_slo_availability_failures_total", "Requests that failed outright.")
	reg.Help("mp_slo_latency_objective_seconds", "Configured per-request latency objective.")
	for i, w := range sloWindows {
		idx := i
		lbl := Labels{"window": w.name}
		reg.GaugeFunc("mp_slo_latency_burn_rate", lbl, func() float64 {
			return s.Snapshot().Windows[idx].LatencyBurnRate
		})
		reg.GaugeFunc("mp_slo_availability_burn_rate", lbl, func() float64 {
			return s.Snapshot().Windows[idx].AvailabilityBurnRate
		})
	}
	reg.CounterFunc("mp_slo_requests_total", nil, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.total)
	})
	reg.CounterFunc("mp_slo_latency_breaches_total", nil, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.slow)
	})
	reg.CounterFunc("mp_slo_availability_failures_total", nil, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.fail)
	})
	reg.GaugeFunc("mp_slo_latency_objective_seconds", nil, func() float64 {
		return s.cfg.LatencyObjective.Seconds()
	})
}
