package obs

import (
	"strings"
	"testing"
)

func TestDriftConfigDefaults(t *testing.T) {
	cfg := DriftConfig{}.withDefaults()
	if cfg.WindowSize != 64 || cfg.MinSamples != 32 || cfg.Interval != 16 || cfg.Alpha != 0.005 {
		t.Errorf("defaults = %+v", cfg)
	}
	// MinSamples can never exceed the window that holds the samples.
	cfg = DriftConfig{WindowSize: 10, MinSamples: 50}.withDefaults()
	if cfg.MinSamples != 10 {
		t.Errorf("MinSamples = %d, want clamped to WindowSize 10", cfg.MinSamples)
	}
}

func TestDriftNilDetectorIsNoop(t *testing.T) {
	var d *DriftDetector
	d.SetReference("db", "1-term/low", []float64{1, 2, 3})
	d.Observe("db", "1-term/low", 1.5)
	d.SetMetrics(NewRegistry())
	d.SetOnAlert(func(DriftAlert) {})
	if s := d.Snapshot(); len(s) != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
	if a := d.Alerts(); a != 0 {
		t.Errorf("nil alerts = %d", a)
	}
}

func TestDriftObserveWithoutReferenceIsDropped(t *testing.T) {
	d := NewDriftDetector(DriftConfig{WindowSize: 4, MinSamples: 4, Interval: 1})
	for i := 0; i < 20; i++ {
		d.Observe("db", "1-term/low", float64(i))
	}
	if s := d.Snapshot(); len(s) != 0 {
		t.Errorf("observations without a reference tracked: %+v", s)
	}
}

func TestDriftEmptyReferenceIgnored(t *testing.T) {
	d := NewDriftDetector(DriftConfig{WindowSize: 4, MinSamples: 4, Interval: 1})
	d.SetReference("db", "1-term/low", nil)
	d.Observe("db", "1-term/low", 1)
	if s := d.Snapshot(); len(s) != 0 {
		t.Errorf("empty reference created a window: %+v", s)
	}
}

// repeat builds a sample with each value of vals repeated n times —
// the quantized-support shape SetReference receives in production.
func repeat(vals []float64, n int) []float64 {
	out := make([]float64, 0, len(vals)*n)
	for _, v := range vals {
		for i := 0; i < n; i++ {
			out = append(out, v)
		}
	}
	return out
}

func TestDriftTestCadenceAndNoFalseAlarm(t *testing.T) {
	var alerts []DriftAlert
	d := NewDriftDetector(DriftConfig{WindowSize: 8, MinSamples: 8, Interval: 4, Alpha: 0.01})
	d.SetOnAlert(func(a DriftAlert) { alerts = append(alerts, a) })
	ref := repeat([]float64{0.5, 1.5, 2.5}, 20)
	d.SetReference("db", "1-term/low", ref)

	// Fresh samples drawn from the same discrete support: no drift.
	support := []float64{0.5, 1.5, 2.5}
	for i := 0; i < 24; i++ {
		d.Observe("db", "1-term/low", support[i%3])
	}
	snap := d.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	s := snap[0]
	if s.DB != "db" || s.QueryType != "1-term/low" {
		t.Errorf("status key = %s/%s", s.DB, s.QueryType)
	}
	// Window fills at observation 8; tests run every Interval=4 after
	// that: observations 8, 12, 16, 20, 24 → 5 tests.
	if s.Tests != 5 {
		t.Errorf("tests = %d, want 5 (window fill + every 4th observation)", s.Tests)
	}
	if s.Alerts != 0 || len(alerts) != 0 {
		t.Errorf("same-distribution samples alerted: status=%+v callback=%+v", s, alerts)
	}
	if s.LastPValue <= 0.01 {
		t.Errorf("same-distribution p-value = %v, suspiciously low", s.LastPValue)
	}
}

func TestDriftAlertOnShiftedDistribution(t *testing.T) {
	var alerts []DriftAlert
	reg := NewRegistry()
	d := NewDriftDetector(DriftConfig{WindowSize: 16, MinSamples: 16, Interval: 4, Alpha: 0.01})
	d.SetMetrics(reg)
	d.SetOnAlert(func(a DriftAlert) { alerts = append(alerts, a) })
	d.SetReference("db", "2-term/low", repeat([]float64{0.5, 1.5}, 30))

	// Every fresh error lands far above the reference support.
	for i := 0; i < 16; i++ {
		d.Observe("db", "2-term/low", 6.5)
	}
	if len(alerts) == 0 {
		t.Fatal("fully shifted window raised no alert")
	}
	a := alerts[0]
	if a.DB != "db" || a.QueryType != "2-term/low" {
		t.Errorf("alert key = %s/%s", a.DB, a.QueryType)
	}
	if a.PValue >= 0.01 {
		t.Errorf("alert p-value = %v, want < alpha", a.PValue)
	}
	if a.Statistic <= 0.5 {
		t.Errorf("alert KS statistic = %v, want large for disjoint supports", a.Statistic)
	}
	if a.Samples != 16 {
		t.Errorf("alert samples = %d, want window size", a.Samples)
	}
	if d.Alerts() == 0 {
		t.Error("Alerts() total is zero after an alert")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`mp_ed_drift_alerts_total{db="db"}`,
		"mp_ed_drift_tests_total",
		`mp_ed_drift_statistic{db="db",type="2-term/low"}`,
		`mp_ed_drift_pvalue{db="db",type="2-term/low"}`,
		"# HELP mp_ed_drift_alerts_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDriftSetReferenceResetsWindow(t *testing.T) {
	var alerts []DriftAlert
	d := NewDriftDetector(DriftConfig{WindowSize: 8, MinSamples: 8, Interval: 2, Alpha: 0.01})
	d.SetOnAlert(func(a DriftAlert) { alerts = append(alerts, a) })
	d.SetReference("db", "1-term/low", repeat([]float64{0.5}, 20))
	for i := 0; i < 8; i++ {
		d.Observe("db", "1-term/low", 9.5)
	}
	if len(alerts) == 0 {
		t.Fatal("shifted window raised no alert before retrain")
	}

	// Retraining installs a reference matching the new regime; the stale
	// window must be discarded, so no further alert fires from old data.
	alerts = nil
	d.SetReference("db", "1-term/low", repeat([]float64{9.5}, 20))
	snap := d.Snapshot()
	if len(snap) != 1 || snap[0].Samples != 0 {
		t.Fatalf("window not reset by SetReference: %+v", snap)
	}
	for i := 0; i < 8; i++ {
		d.Observe("db", "1-term/low", 9.5)
	}
	if len(alerts) != 0 {
		t.Errorf("post-retrain samples matching the new reference alerted: %+v", alerts)
	}
}

func TestDriftSnapshotSorted(t *testing.T) {
	d := NewDriftDetector(DriftConfig{})
	ref := repeat([]float64{1}, 5)
	d.SetReference("zeta", "1-term/low", ref)
	d.SetReference("alpha", "2-term/low", ref)
	d.SetReference("alpha", "1-term/low", ref)
	d.Observe("zeta", "1-term/low", 1)
	d.Observe("alpha", "2-term/low", 1)
	d.Observe("alpha", "1-term/low", 1)
	snap := d.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	for i := 1; i < len(snap); i++ {
		prev, cur := snap[i-1], snap[i]
		if prev.DB > cur.DB || (prev.DB == cur.DB && prev.QueryType > cur.QueryType) {
			t.Errorf("snapshot not sorted: %+v before %+v", prev, cur)
		}
	}
}
