package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// MetricsHandler serves the registry in Prometheus text exposition
// format — mount it at /metrics.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Headers are gone; nothing useful left to do but note it.
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// TraceHandler serves the ring tracer's retained selection traces as a
// JSON array, newest first — mount it at /debug/trace. The optional
// ?n= query parameter limits the count; a malformed or non-positive n
// is rejected with 400 rather than silently ignored.
func TraceHandler(t *RingTracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(t.Last(n)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// CalibrationHandler serves the reliability accumulator's snapshot as
// JSON — mount it at /debug/calibration. A nil accumulator serves the
// zero snapshot, so the endpoint can be mounted unconditionally.
func CalibrationHandler(c *Calibration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(c.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// SLOHandler serves the SLO tracker's burn-rate snapshot as JSON —
// mount it at /debug/slo. A nil tracker serves the zero snapshot, so
// the endpoint can be mounted unconditionally.
func SLOHandler(s *SLO) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// JSONHandler serves snapshot() as indented JSON on every request —
// the generic /debug/* endpoint builder (the model-version endpoint
// mounts it at /debug/model). snapshot runs per request, so the served
// view is always current.
func JSONHandler(snapshot func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// HealthzHandler reports process liveness: it always answers 200 "ok".
// Mount it at /healthz for load-balancer liveness checks.
func HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
}

// ReadyzCheckHandler reports readiness with a reason: 200 "ready" when
// check() returns nil, 503 with the error text otherwise. Use this
// over ReadyzHandler when readiness can fail for more than one reason
// (not yet trained, refresher wedged) and operators need to see which.
// A nil check means always ready.
func ReadyzCheckHandler(check func() error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if check != nil {
			if err := check(); err != nil {
				http.Error(w, "not ready: "+err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Write([]byte("ready\n"))
	})
}

// ReadyzHandler reports readiness to serve traffic: 200 "ready" when
// ready() is true, 503 otherwise. For a metasearcher, readiness means
// summaries and error distributions are loaded — before that, every
// selection call fails. Mount it at /readyz. A nil ready func means
// always ready.
func ReadyzHandler(ready func() bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil && !ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ready\n"))
	})
}
