package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// MetricsHandler serves the registry in Prometheus text exposition
// format — mount it at /metrics.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Headers are gone; nothing useful left to do but note it.
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// TraceHandler serves the ring tracer's retained selection traces as a
// JSON array, newest first — mount it at /debug/trace. The optional
// ?n= query parameter limits the count.
func TraceHandler(t *RingTracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(t.Last(n)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
