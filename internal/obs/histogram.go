package obs

import (
	"math"
	"sync/atomic"
)

// Histogram accumulates non-negative observations (typically latencies
// in seconds) into exponentially sized buckets and answers quantile
// queries from the bucket counts. It is safe for concurrent use from
// any goroutine: observation is a handful of atomic operations, no
// locks, so it can sit on the probe hot path.
//
// This is deliberately a different animal from stats.Histogram: that
// one models the paper's error distributions (explicit edges, per-bin
// means, merging), while this one is an operational latency recorder —
// fixed geometric buckets spanning nanoseconds to hours, lock-free
// writes, and approximate quantiles with bounded relative error.
type Histogram struct {
	buckets []atomic.Int64 // one per histBounds entry, plus overflow
	count   atomic.Int64
	sum     atomicFloat
	min     atomicFloat
	max     atomicFloat
	// exemplars backs ObserveExemplar; empty until a trace-linked
	// observation arrives (see exemplar.go).
	exemplars exemplarStore
}

// Bucket layout: bucket i covers (histBounds[i-1], histBounds[i]],
// bucket 0 covers [0, histBounds[0]]. Bounds grow by 2^(1/8) ≈ 9% per
// bucket from 1e-9 to ~1e6, so any quantile is located with under ±5%
// relative error — plenty for p50/p90/p99 dashboards, and cheap: the
// whole histogram is a few KiB.
const histGrowth = 1.0905077326652577 // 2^(1/8)

var histBounds = func() []float64 {
	var b []float64
	for v := 1e-9; v < 1e6; v *= histGrowth {
		b = append(b, v)
	}
	return b
}()

// NewHistogram returns an empty histogram. Registry.Histogram is the
// usual constructor; this one serves tests and standalone use.
func NewHistogram() *Histogram {
	h := &Histogram{buckets: make([]atomic.Int64, len(histBounds)+1)}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// bucketFor locates the bucket of v by binary search over the bounds.
func bucketFor(v float64) int {
	lo, hi := 0, len(histBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if histBounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo // == len(histBounds) for overflow
}

// Observe records one observation. Negative and NaN values are clamped
// to zero (latencies cannot be negative; recording them keeps counts
// consistent with callers that observe once per event).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.storeMin(v)
	h.max.storeMax(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Quantile returns an approximation of the p-quantile (p in [0, 1]) of
// the observations so far, interpolated within the located bucket and
// clamped to the observed [min, max]. It returns 0 when empty.
func (h *Histogram) Quantile(p float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Rank of the wanted observation, 1-based.
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	idx := len(h.buckets) - 1
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			idx = i
			break
		}
	}
	var lo, hi float64
	switch {
	case idx == 0:
		lo, hi = 0, histBounds[0]
	case idx == len(histBounds):
		lo = histBounds[len(histBounds)-1]
		hi = lo * histGrowth
	default:
		lo, hi = histBounds[idx-1], histBounds[idx]
	}
	// Linear interpolation by rank within the bucket.
	inBucket := h.buckets[idx].Load()
	prev := cum - inBucket
	frac := 1.0
	if inBucket > 0 {
		frac = float64(rank-prev) / float64(inBucket)
	}
	v := lo + (hi-lo)*frac
	// Any sample quantile lies within the observed range; clamping
	// removes the bucket-edge error at the extremes.
	if mn := h.min.load(); v < mn {
		v = mn
	}
	if mx := h.max.load(); v > mx {
		v = mx
	}
	return v
}

// Quantiles returns Quantile for each p, sharing one pass convention
// with the exposition code (p50/p90/p99 by default).
func (h *Histogram) Quantiles(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = h.Quantile(p)
	}
	return out
}

// atomicFloat is a float64 with atomic load/add/min/max via CAS on the
// bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) storeMin(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
