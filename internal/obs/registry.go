// Package obs is the zero-dependency observability layer of metaprobe:
// a concurrency-safe metrics registry (counters, gauges, latency
// histograms with quantile snapshots), Prometheus text-format
// exposition, and structured selection tracing.
//
// The paper's central concern is probing cost — every live probe
// against a Hidden-Web source is a remote round trip — so a production
// metasearcher must be able to see its probe counts, certainty
// trajectories, per-database latencies and error rates. This package
// makes all of that observable without adding a single third-party
// dependency: go.mod stays stdlib-only.
//
// Everything is nil-tolerant by design: a nil *Registry and a nil
// Tracer are valid "disabled" values, and the instrumented call sites
// guard with a single pointer comparison, so observability costs
// nothing when switched off.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attaches dimensions to a metric ({"db": "PubMed"}). Metrics
// with the same name but different label values are distinct series of
// one family.
type Labels map[string]string

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { g.v.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

// metricKind discriminates the families a registry holds.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// series is one (name, labels) time series.
type series struct {
	labels  Labels
	counter *Counter
	gauge   *Gauge
	// fn, when set, supplies the value at exposition time (used to
	// surface externally owned state such as cache hit counts).
	fn   func() float64
	hist *Histogram
}

// family groups the series of one metric name.
type family struct {
	name   string
	kind   metricKind
	help   string
	series map[string]*series // key: canonical label string
}

// Registry is a concurrency-safe collection of metric families. The
// zero value is not usable; call NewRegistry. All accessor methods are
// idempotent: asking for the same (name, labels) returns the same
// metric, so call sites may resolve handles eagerly (hot paths) or per
// use (cold paths).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Help sets the help text emitted for a metric family.
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
	} else {
		r.families[name] = &family{name: name, help: help, series: make(map[string]*series)}
	}
}

// labelKey canonicalizes labels into a deterministic map key (and the
// exposition order): sorted by label name.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(escapeLabel(labels[k]))
	}
	return b.String()
}

// lookup finds or creates the series for (name, labels), checking the
// kind stays consistent.
func (r *Registry) lookup(name string, labels Labels, kind metricKind) *series {
	key := labelKey(labels)
	r.mu.RLock()
	if f, ok := r.families[name]; ok && f.kind == kind {
		if s, ok := f.series[key]; ok {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if len(f.series) == 0 {
		// Only Help was registered so far; adopt the kind.
		f.kind = kind
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered twice with different types", name))
	}
	s, ok := f.series[key]
	if !ok {
		// Copy the labels so later caller mutation cannot corrupt the
		// exposition.
		cp := make(Labels, len(labels))
		for k, v := range labels {
			cp[k] = v
		}
		s = &series{labels: cp}
		switch kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = NewHistogram()
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use. Safe to call from any goroutine; returns a shared no-op on a
// nil registry.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	if r == nil {
		return nopCounter
	}
	return r.lookup(name, labels, kindCounter).counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	if r == nil {
		return nopGauge
	}
	return r.lookup(name, labels, kindGauge).gauge
}

// Histogram returns the histogram for (name, labels), creating it on
// first use.
func (r *Registry) Histogram(name string, labels Labels) *Histogram {
	if r == nil {
		return nopHistogram
	}
	return r.lookup(name, labels, kindHistogram).hist
}

// CounterFunc registers a counter series whose value is read from fn at
// exposition time — the bridge for state owned elsewhere (e.g.
// Cached.Stats hit counts). Re-registering the same (name, labels)
// replaces the function.
func (r *Registry) CounterFunc(name string, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	s := r.lookup(name, labels, kindCounter)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge series computed by fn at exposition time.
func (r *Registry) GaugeFunc(name string, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	s := r.lookup(name, labels, kindGauge)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Shared no-op metrics returned by a nil registry, so call sites can
// resolve handles unconditionally and skip nil checks on use. Writes
// land in these dead metrics.
var (
	nopCounter   = &Counter{}
	nopGauge     = &Gauge{}
	nopHistogram = NewHistogram()
)

// quantiles exposed for histogram families, in exposition order.
var expoQuantiles = []float64{0.5, 0.9, 0.99}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as summaries with p50/p90/p99 quantile samples
// plus _sum and _count. Families and series are emitted in sorted
// order so the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		r.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sers := make([]*series, len(keys))
		fns := make([]func() float64, len(keys))
		for i, k := range keys {
			sers[i] = f.series[k]
			fns[i] = f.series[k].fn
		}
		help, kind, name := f.help, f.kind, f.name
		r.mu.RUnlock()
		if len(sers) == 0 {
			continue
		}
		if help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typeString(kind)); err != nil {
			return err
		}
		for i, s := range sers {
			if err := writeSeries(w, name, s, fns[i], kind); err != nil {
				return err
			}
		}
	}
	return nil
}

// typeString maps a kind to its exposition TYPE token.
func typeString(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// writeSeries renders one series.
func writeSeries(w io.Writer, name string, s *series, fn func() float64, kind metricKind) error {
	switch kind {
	case kindCounter:
		v := float64(s.counter.Value())
		if fn != nil {
			v = fn()
		}
		_, err := fmt.Fprintf(w, "%s%s %v\n", name, formatLabels(s.labels, "", 0), v)
		return err
	case kindGauge:
		v := s.gauge.Value()
		if fn != nil {
			v = fn()
		}
		_, err := fmt.Fprintf(w, "%s%s %v\n", name, formatLabels(s.labels, "", 0), v)
		return err
	default:
		for _, q := range expoQuantiles {
			if _, err := fmt.Fprintf(w, "%s%s %v\n", name, formatLabels(s.labels, "quantile", q), s.hist.Quantile(q)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %v\n", name, formatLabels(s.labels, "", 0), s.hist.Sum()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, formatLabels(s.labels, "", 0), s.hist.Count()); err != nil {
			return err
		}
		// Histograms that carry trace-linked observations additionally
		// emit a cumulative bucket ladder with OpenMetrics exemplars, so
		// /metrics links latency regions to concrete trace IDs.
		if exs := s.hist.Exemplars(); exs != nil {
			return writeExemplarBuckets(w, name, s.labels, s.hist, exs)
		}
		return nil
	}
}

// sortedLabelKeys returns the label names in exposition order.
func sortedLabelKeys(labels Labels) []string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatLabels renders {k="v",...}; quantileKey, when non-empty, adds
// the summary quantile label.
func formatLabels(labels Labels, quantileKey string, quantile float64) string {
	if len(labels) == 0 && quantileKey == "" {
		return ""
	}
	keys := sortedLabelKeys(labels)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", k, escapeLabel(labels[k]))
	}
	if quantileKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%v\"", quantileKey, quantile)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes backslash, quote and newline per the exposition
// format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}
