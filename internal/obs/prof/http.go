package prof

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/pprof"
	"strconv"
)

// Handler serves the captor's ring store — mount it at
// /debug/profiles:
//
//	GET /debug/profiles             JSON list of retained captures (no blobs)
//	GET /debug/profiles?id=N        raw pprof blob of capture N
//	GET /debug/profiles?latest=heap raw pprof blob of the newest heap capture
//	GET /debug/profiles?latest=cpu  raw pprof blob of the newest CPU capture
//
// Blobs are standard gzip-compressed pprof protobufs: save one and
// inspect it with `go tool pprof <file>`, or diff two heap captures
// with `go tool pprof -diff_base old.pb.gz new.pb.gz`. A nil captor
// serves an empty list, so the endpoint can be mounted
// unconditionally.
func Handler(c *Captor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		if s := q.Get("id"); s != "" {
			id, err := strconv.ParseInt(s, 10, 64)
			if err != nil || id <= 0 {
				http.Error(w, "id must be a positive integer", http.StatusBadRequest)
				return
			}
			serveBlob(w, c.Get(id))
			return
		}
		if kind := q.Get("latest"); kind != "" {
			if kind != KindCPU && kind != KindHeap {
				http.Error(w, "latest must be cpu or heap", http.StatusBadRequest)
				return
			}
			serveBlob(w, c.Latest(kind))
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		list := c.List()
		if list == nil {
			list = []*Capture{}
		}
		if err := enc.Encode(list); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// serveBlob writes one capture's raw pprof bytes, or 404.
func serveBlob(w http.ResponseWriter, cp *Capture) {
	if cp == nil {
		http.Error(w, "no such capture", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf(`attachment; filename="%s-%d.pb.gz"`, cp.Kind, cp.ID))
	w.Write(cp.Blob)
}

// GoroutineDumpHandler serves a plain-text dump of all goroutine
// stacks — mount it at /debug/goroutines. ?full=1 switches from the
// aggregated view (identical stacks collapsed with counts) to the
// unaggregated per-goroutine view with full frames, which is what you
// want when hunting a leak's spawn site.
func GoroutineDumpHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		p := pprof.Lookup("goroutine")
		if p == nil {
			http.Error(w, "goroutine profile unavailable", http.StatusInternalServerError)
			return
		}
		debug := 1
		if req.URL.Query().Get("full") == "1" {
			debug = 2
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		p.WriteTo(w, debug)
	})
}
