package prof

import (
	"context"
	"math"
	"runtime/metrics"
	"sync"
	"time"

	"metaprobe/internal/obs"
)

// SamplerConfig configures a runtime-telemetry Sampler.
type SamplerConfig struct {
	// Interval between samples (default 5s).
	Interval time.Duration
	// Metrics receives the mp_runtime_* gauges. A nil registry makes
	// the sampler a no-op.
	Metrics *obs.Registry
}

// gaugeSpec maps one runtime/metrics counter or gauge onto an
// mp_runtime_* series. Candidates are tried in order against the
// running Go version's metric set, so a rename across Go releases
// degrades to "series absent" rather than a panic.
type gaugeSpec struct {
	out        string
	help       string
	candidates []string
}

// histSpec maps one runtime/metrics Float64Histogram onto quantile
// gauges mp_runtime_<out>{quantile="..."}.
type histSpec struct {
	out        string
	help       string
	candidates []string
}

var runtimeGauges = []gaugeSpec{
	{"mp_runtime_heap_inuse_bytes", "Bytes of live heap objects (runtime/metrics /memory/classes/heap/objects:bytes).",
		[]string{"/memory/classes/heap/objects:bytes"}},
	{"mp_runtime_goroutines", "Live goroutine count.",
		[]string{"/sched/goroutines:goroutines"}},
	{"mp_runtime_gc_cycles_total", "Completed GC cycles since process start.",
		[]string{"/gc/cycles/total:gc-cycles"}},
	{"mp_runtime_heap_allocs_bytes_total", "Cumulative bytes allocated on the heap.",
		[]string{"/gc/heap/allocs:bytes"}},
	{"mp_runtime_gc_goal_bytes", "Heap size target for the end of the current GC cycle.",
		[]string{"/gc/heap/goal:bytes"}},
}

var runtimeHists = []histSpec{
	{"mp_runtime_gc_pause_seconds", "Distribution of stop-the-world GC pause latencies.",
		[]string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"}},
	{"mp_runtime_sched_latency_seconds", "Distribution of goroutine scheduling latency (runnable to running).",
		[]string{"/sched/latencies:seconds"}},
}

var samplerQuantiles = []float64{0.5, 0.9, 0.99}

// Sampler periodically reads runtime/metrics into mp_runtime_*
// gauges. Create with NewSampler, then Start; Sample may also be
// called directly for a one-shot read (the shutdown path uses this to
// flush a final sample).
type Sampler struct {
	cfg SamplerConfig

	// resolved series: parallel to the spec tables, with the metric
	// name that this Go version actually exposes ("" = unavailable).
	gaugeNames []string
	histNames  []string
	samples    []metrics.Sample // one read buffer, reused across samples
	gaugeIdx   []int            // index into samples per runtimeGauges entry, -1 if absent
	histIdx    []int

	gauges []*obs.Gauge
	qGauge [][]*obs.Gauge // per histSpec, per quantile

	mu     sync.Mutex
	last   map[string]float64 // latest values by output series name (quantiles suffixed)
	cancel context.CancelFunc
	done   chan struct{}
}

// NewSampler builds a sampler, resolving which runtime/metrics names
// this Go version supports.
func NewSampler(cfg SamplerConfig) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	s := &Sampler{cfg: cfg, last: make(map[string]float64)}

	available := make(map[string]bool)
	for _, d := range metrics.All() {
		available[d.Name] = true
	}
	pick := func(candidates []string) string {
		for _, name := range candidates {
			if available[name] {
				return name
			}
		}
		return ""
	}

	r := cfg.Metrics
	for _, spec := range runtimeGauges {
		name := pick(spec.candidates)
		s.gaugeNames = append(s.gaugeNames, name)
		if name == "" {
			s.gaugeIdx = append(s.gaugeIdx, -1)
			s.gauges = append(s.gauges, nil)
			continue
		}
		r.Help(spec.out, spec.help)
		s.gaugeIdx = append(s.gaugeIdx, len(s.samples))
		s.samples = append(s.samples, metrics.Sample{Name: name})
		s.gauges = append(s.gauges, r.Gauge(spec.out, nil))
	}
	for _, spec := range runtimeHists {
		name := pick(spec.candidates)
		s.histNames = append(s.histNames, name)
		if name == "" {
			s.histIdx = append(s.histIdx, -1)
			s.qGauge = append(s.qGauge, nil)
			continue
		}
		r.Help(spec.out, spec.help)
		s.histIdx = append(s.histIdx, len(s.samples))
		s.samples = append(s.samples, metrics.Sample{Name: name})
		qs := make([]*obs.Gauge, len(samplerQuantiles))
		for i, q := range samplerQuantiles {
			qs[i] = r.Gauge(spec.out, obs.Labels{"quantile": formatQuantile(q)})
		}
		s.qGauge = append(s.qGauge, qs)
	}
	return s
}

func formatQuantile(q float64) string {
	switch q {
	case 0.5:
		return "0.5"
	case 0.9:
		return "0.9"
	case 0.99:
		return "0.99"
	}
	return "0"
}

// Sample performs one runtime/metrics read and publishes every
// resolved series. Safe on a nil sampler.
func (s *Sampler) Sample() {
	if s == nil || len(s.samples) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.samples)
	for i, spec := range runtimeGauges {
		idx := s.gaugeIdx[i]
		if idx < 0 {
			continue
		}
		v := sampleValue(s.samples[idx])
		s.gauges[i].Set(v)
		s.last[spec.out] = v
	}
	for i, spec := range runtimeHists {
		idx := s.histIdx[i]
		if idx < 0 {
			continue
		}
		h := s.samples[idx].Value.Float64Histogram()
		if h == nil {
			continue
		}
		for j, q := range samplerQuantiles {
			v := histQuantile(h, q)
			s.qGauge[i][j].Set(v)
			s.last[spec.out+"{q="+formatQuantile(q)+"}"] = v
		}
	}
}

// sampleValue flattens a runtime/metrics value to float64.
func sampleValue(sm metrics.Sample) float64 {
	switch sm.Value.Kind() {
	case metrics.KindUint64:
		return float64(sm.Value.Uint64())
	case metrics.KindFloat64:
		return sm.Value.Float64()
	}
	return 0
}

// histQuantile computes quantile q from a runtime/metrics
// Float64Histogram: cumulative counts over the bucket ladder, with
// the answer taken at the upper boundary of the bucket that crosses
// the target rank (infinite boundaries fall back to the nearest
// finite edge). Returns 0 for an empty histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Bucket i spans Buckets[i] .. Buckets[i+1].
			hi := h.Buckets[i+1]
			if !math.IsInf(hi, 0) {
				return hi
			}
			lo := h.Buckets[i]
			if !math.IsInf(lo, 0) {
				return lo
			}
			return 0
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// Snapshot returns the most recent sampled values by output series
// name (histogram series appear as "name{q=0.99}"). Used by the web
// UI panel and loadtest report. Safe on a nil sampler.
func (s *Sampler) Snapshot() map[string]float64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64, len(s.last))
	for k, v := range s.last {
		out[k] = v
	}
	return out
}

// Start launches the background sampling loop (taking an immediate
// first sample). No-op on nil or if already started.
func (s *Sampler) Start(ctx context.Context) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done != nil {
		s.mu.Unlock()
		return
	}
	ctx, s.cancel = context.WithCancel(ctx)
	s.done = make(chan struct{})
	done := s.done
	s.mu.Unlock()

	s.Sample()
	go func() {
		defer close(done)
		ticker := time.NewTicker(s.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				s.Sample()
			}
		}
	}()
}

// Stop halts the loop, waits for it to exit, and flushes one final
// sample so the shutdown state is visible in the last scrape /
// snapshot. Safe on nil / never-started, and idempotent.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	cancel, done := s.cancel, s.done
	s.cancel, s.done = nil, nil
	s.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	<-done
	s.Sample()
}
