// Package prof is metaprobe's zero-dependency performance
// observability layer: a continuous profiler that captures CPU and
// heap pprof profiles into a bounded in-memory ring (mirroring the
// span store), a runtime-telemetry sampler that surfaces
// runtime/metrics as mp_runtime_* gauges, and HTTP handlers that
// serve both.
//
// The paper's cost model counts probes; the ROADMAP's next refactor
// counts allocations. This package supplies the evidence for the
// latter: instead of a one-off `go tool pprof` session, the captor
// keeps a rolling window of recent profiles so a latency incident
// observed through the span store can be matched to the CPU and heap
// shape of the same minutes. Everything is stdlib-only and
// nil-tolerant: a nil *Captor or *Sampler is a valid disabled value.
package prof

import (
	"bytes"
	"context"
	"fmt"
	"runtime/metrics"
	"runtime/pprof"
	"sync"
	"time"

	"metaprobe/internal/obs"
)

// Kind discriminates the profile types the captor records.
const (
	KindCPU  = "cpu"
	KindHeap = "heap"
)

// Capture is one recorded profile. Blob holds the raw pprof protobuf
// (gzip-compressed, as written by runtime/pprof) and is omitted from
// list views — fetch it by ID from the profiles handler and feed it
// to `go tool pprof`.
type Capture struct {
	ID       int64         `json:"id"`
	Kind     string        `json:"kind"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Size     int           `json:"size_bytes"`
	// Meta carries capture-scoped context. Heap captures include the
	// allocation deltas since the previous heap capture
	// (delta_alloc_bytes, delta_alloc_objects, delta_gc_cycles), which
	// is what "delta heap" means here: the blob itself is a full heap
	// profile — diff two of them with `go tool pprof -diff_base` — and
	// the meta tells you how much churn the interval saw.
	Meta map[string]float64 `json:"meta,omitempty"`
	Blob []byte             `json:"-"`
}

// Config configures a Captor. The zero value is usable: all fields
// default sanely.
type Config struct {
	// Interval is the spacing between capture rounds (default 30s).
	// Each round records one CPU profile and one heap profile.
	Interval time.Duration
	// CPUDuration is how long each CPU profile samples (default 1s,
	// clamped below Interval).
	CPUDuration time.Duration
	// Capacity bounds the ring of retained captures (default 32,
	// counting CPU and heap captures separately toward the bound).
	Capacity int
	// Metrics, when set, receives mp_prof_* series.
	Metrics *obs.Registry
}

// Captor periodically records CPU and heap profiles into a bounded
// ring. Create with New, then Start; Stop flushes a final heap
// capture so a shutdown never drops the last interval.
type Captor struct {
	cfg Config

	mu     sync.Mutex
	ring   []*Capture // oldest first, bounded by cfg.Capacity
	nextID int64
	// previous-heap-capture counters, for delta meta
	prevAllocBytes   float64
	prevAllocObjects float64
	prevGCCycles     float64
	havePrev         bool

	cancel context.CancelFunc
	done   chan struct{}

	captures  func(kind string) *obs.Counter
	errors    func(kind string) *obs.Counter
	dropped   *obs.Counter
	capSecs   *obs.Histogram
	lastUnix  *obs.Gauge
	retainedG *obs.Gauge
}

// New creates a Captor. Returns an error only for nonsensical
// configuration.
func New(cfg Config) (*Captor, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = time.Second
	}
	if cfg.CPUDuration >= cfg.Interval {
		return nil, fmt.Errorf("prof: CPUDuration %v must be shorter than Interval %v", cfg.CPUDuration, cfg.Interval)
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 32
	}
	c := &Captor{cfg: cfg}
	r := cfg.Metrics // nil registry degrades every handle to a shared no-op
	r.Help("mp_prof_captures_total", "Profiles captured, by kind (cpu|heap).")
	r.Help("mp_prof_capture_errors_total", "Profile capture attempts that failed, by kind.")
	r.Help("mp_prof_dropped_total", "Captures evicted from the bounded ring store.")
	r.Help("mp_prof_capture_seconds", "Wall time spent recording one profile.")
	r.Help("mp_prof_last_capture_unix", "Unix time of the most recent successful capture.")
	r.Help("mp_prof_retained", "Captures currently retained in the ring store.")
	c.captures = func(kind string) *obs.Counter {
		return r.Counter("mp_prof_captures_total", obs.Labels{"kind": kind})
	}
	c.errors = func(kind string) *obs.Counter {
		return r.Counter("mp_prof_capture_errors_total", obs.Labels{"kind": kind})
	}
	c.dropped = r.Counter("mp_prof_dropped_total", nil)
	c.capSecs = r.Histogram("mp_prof_capture_seconds", nil)
	c.lastUnix = r.Gauge("mp_prof_last_capture_unix", nil)
	c.retainedG = r.Gauge("mp_prof_retained", nil)
	return c, nil
}

// Start launches the background capture loop. It is a no-op on a nil
// captor or if already started. The loop stops when ctx is cancelled
// or Stop is called.
func (c *Captor) Start(ctx context.Context) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.done != nil {
		c.mu.Unlock()
		return
	}
	ctx, c.cancel = context.WithCancel(ctx)
	c.done = make(chan struct{})
	done := c.done
	c.mu.Unlock()

	go func() {
		defer close(done)
		ticker := time.NewTicker(c.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				c.CaptureCPU(ctx)
				c.CaptureHeap()
			}
		}
	}()
}

// Stop cancels the capture loop, waits for it to exit, and records
// one final heap capture so the shutdown interval is not lost. Safe
// to call on a nil or never-started captor, and idempotent.
func (c *Captor) Stop() {
	if c == nil {
		return
	}
	c.mu.Lock()
	cancel, done := c.cancel, c.done
	c.cancel, c.done = nil, nil
	c.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	<-done
	c.CaptureHeap()
}

// CaptureCPU records one CPU profile of the configured duration and
// stores it. Returns the capture, or nil if profiling could not start
// (most commonly: another CPU profile is already active — CPU
// profiling is process-exclusive) or ctx ended before the sampling
// window completed.
func (c *Captor) CaptureCPU(ctx context.Context) *Capture {
	if c == nil {
		return nil
	}
	start := time.Now()
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		c.errors(KindCPU).Inc()
		return nil
	}
	select {
	case <-time.After(c.cfg.CPUDuration):
	case <-ctx.Done():
		pprof.StopCPUProfile()
		c.errors(KindCPU).Inc()
		return nil
	}
	pprof.StopCPUProfile()
	return c.store(&Capture{
		Kind:     KindCPU,
		Start:    start,
		Duration: time.Since(start),
		Blob:     append([]byte(nil), buf.Bytes()...),
	})
}

// heapDeltaSamples are the runtime/metrics read alongside each heap
// capture to produce interval deltas. All three names are stable
// since runtime/metrics shipped in Go 1.16.
var heapDeltaSamples = []string{
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
	"/gc/cycles/total:gc-cycles",
}

// CaptureHeap records one heap profile and stores it, attaching
// allocation deltas since the previous heap capture as meta.
func (c *Captor) CaptureHeap() *Capture {
	if c == nil {
		return nil
	}
	start := time.Now()
	p := pprof.Lookup("heap")
	if p == nil {
		c.errors(KindHeap).Inc()
		return nil
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 0); err != nil {
		c.errors(KindHeap).Inc()
		return nil
	}
	samples := make([]metrics.Sample, len(heapDeltaSamples))
	for i, name := range heapDeltaSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	val := func(i int) float64 {
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			return float64(samples[i].Value.Uint64())
		case metrics.KindFloat64:
			return samples[i].Value.Float64()
		}
		return 0
	}
	allocBytes, allocObjects, gcCycles := val(0), val(1), val(2)

	cap_ := &Capture{
		Kind:     KindHeap,
		Start:    start,
		Duration: time.Since(start),
		Blob:     append([]byte(nil), buf.Bytes()...),
	}
	c.mu.Lock()
	if c.havePrev {
		cap_.Meta = map[string]float64{
			"delta_alloc_bytes":   allocBytes - c.prevAllocBytes,
			"delta_alloc_objects": allocObjects - c.prevAllocObjects,
			"delta_gc_cycles":     gcCycles - c.prevGCCycles,
		}
	}
	c.prevAllocBytes, c.prevAllocObjects, c.prevGCCycles = allocBytes, allocObjects, gcCycles
	c.havePrev = true
	c.mu.Unlock()
	return c.store(cap_)
}

// store appends a capture to the ring, evicting the oldest past
// capacity, and updates metrics.
func (c *Captor) store(cap_ *Capture) *Capture {
	cap_.Size = len(cap_.Blob)
	c.mu.Lock()
	c.nextID++
	cap_.ID = c.nextID
	c.ring = append(c.ring, cap_)
	for len(c.ring) > c.cfg.Capacity {
		c.ring = c.ring[1:]
		c.dropped.Inc()
	}
	retained := len(c.ring)
	c.mu.Unlock()

	c.captures(cap_.Kind).Inc()
	c.capSecs.Observe(cap_.Duration.Seconds())
	c.lastUnix.Set(float64(cap_.Start.Unix()))
	c.retainedG.Set(float64(retained))
	return cap_
}

// List returns the retained captures newest first, without blobs
// (Capture.Blob is already excluded from JSON; the returned structs
// share the blob slices, so callers must not mutate them).
func (c *Captor) List() []*Capture {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Capture, len(c.ring))
	for i, cp := range c.ring {
		out[len(c.ring)-1-i] = cp
	}
	return out
}

// Get returns the capture with the given ID, or nil if it has been
// evicted or never existed.
func (c *Captor) Get(id int64) *Capture {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cp := range c.ring {
		if cp.ID == id {
			return cp
		}
	}
	return nil
}

// Latest returns the most recent capture of the given kind, or nil.
func (c *Captor) Latest(kind string) *Capture {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.ring) - 1; i >= 0; i-- {
		if c.ring[i].Kind == kind {
			return c.ring[i]
		}
	}
	return nil
}
