package prof

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"runtime/metrics"
	"strings"
	"testing"
	"time"

	"metaprobe/internal/leakcheck"
	"metaprobe/internal/obs"
)

func TestCaptorHeapCaptureAndRing(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(Config{Capacity: 3, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 0; i < 5; i++ {
		cp := c.CaptureHeap()
		if cp == nil {
			t.Fatal("heap capture failed")
		}
		if cp.Size == 0 || len(cp.Blob) == 0 {
			t.Fatalf("capture %d has empty blob", cp.ID)
		}
		ids = append(ids, cp.ID)
	}
	list := c.List()
	if len(list) != 3 {
		t.Fatalf("ring should hold 3, got %d", len(list))
	}
	// Newest first.
	if list[0].ID != ids[4] || list[2].ID != ids[2] {
		t.Fatalf("unexpected ring order: %d..%d", list[0].ID, list[2].ID)
	}
	if got := c.Get(ids[0]); got != nil {
		t.Fatalf("evicted capture %d still retrievable", ids[0])
	}
	if got := c.Latest(KindHeap); got == nil || got.ID != ids[4] {
		t.Fatalf("Latest(heap) = %v, want id %d", got, ids[4])
	}
	// Delta meta appears from the second capture onward.
	if list[0].Meta == nil {
		t.Fatal("second+ heap capture should carry delta meta")
	}
	if _, ok := list[0].Meta["delta_alloc_bytes"]; !ok {
		t.Fatalf("missing delta_alloc_bytes in %v", list[0].Meta)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `mp_prof_captures_total{kind="heap"} 5`) {
		t.Fatalf("missing capture counter in exposition:\n%s", out)
	}
	if !strings.Contains(out, "mp_prof_dropped_total 2") {
		t.Fatalf("missing dropped counter in exposition:\n%s", out)
	}
}

func TestCaptorCPUCapture(t *testing.T) {
	c, err := New(Config{CPUDuration: 20 * time.Millisecond, Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cp := c.CaptureCPU(context.Background())
	if cp == nil {
		// Another CPU profile may be active (e.g. go test -cpuprofile);
		// that is the documented conflict path, not a bug.
		t.Skip("CPU profiling unavailable (already active?)")
	}
	if len(cp.Blob) == 0 {
		t.Fatal("CPU capture has empty blob")
	}
	if cp.Kind != KindCPU {
		t.Fatalf("kind = %q", cp.Kind)
	}
}

func TestCaptorStartStopNoLeak(t *testing.T) {
	leakcheck.Check(t)
	reg := obs.NewRegistry()
	c, err := New(Config{Interval: 20 * time.Millisecond, CPUDuration: 5 * time.Millisecond, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(context.Background())
	time.Sleep(60 * time.Millisecond) // let at least one round run
	c.Stop()
	// Stop flushes a final heap capture, so the ring is never empty
	// after a started captor shuts down.
	if c.Latest(KindHeap) == nil {
		t.Fatal("Stop should flush a final heap capture")
	}
	c.Stop() // idempotent
}

func TestCaptorNilSafe(t *testing.T) {
	var c *Captor
	c.Start(context.Background())
	c.Stop()
	if c.CaptureHeap() != nil || c.List() != nil || c.Get(1) != nil || c.Latest(KindHeap) != nil {
		t.Fatal("nil captor should be inert")
	}
}

func TestProfilesHandler(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cp := c.CaptureHeap()
	h := Handler(c)

	// List view: JSON, no blobs.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles", nil))
	if rec.Code != 200 {
		t.Fatalf("list status %d", rec.Code)
	}
	var list []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("list not JSON: %v", err)
	}
	if len(list) != 1 || list[0]["kind"] != "heap" {
		t.Fatalf("unexpected list: %v", list)
	}
	if _, ok := list[0]["Blob"]; ok {
		t.Fatal("blob leaked into list view")
	}

	// Blob fetch by id and by latest.
	for _, url := range []string{"/debug/profiles?id=1", "/debug/profiles?latest=heap"} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Fatalf("%s status %d", url, rec.Code)
		}
		if rec.Body.Len() != cp.Size {
			t.Fatalf("%s returned %d bytes, capture is %d", url, rec.Body.Len(), cp.Size)
		}
	}

	// Error paths.
	for url, want := range map[string]int{
		"/debug/profiles?id=0":       400,
		"/debug/profiles?id=x":       400,
		"/debug/profiles?id=99":      404,
		"/debug/profiles?latest=cpu": 404,
		"/debug/profiles?latest=zz":  400,
	} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != want {
			t.Errorf("%s status %d, want %d", url, rec.Code, want)
		}
	}

	// Nil captor serves an empty list.
	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles", nil))
	if rec.Code != 200 || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Fatalf("nil captor list: %d %q", rec.Code, rec.Body.String())
	}
}

func TestGoroutineDumpHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	GoroutineDumpHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/goroutines", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("dump does not look like a goroutine profile: %q", rec.Body.String()[:80])
	}
	rec = httptest.NewRecorder()
	GoroutineDumpHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/goroutines?full=1", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine ") {
		t.Fatalf("full dump: %d", rec.Code)
	}
}

func TestSamplerPublishesRuntimeGauges(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSampler(SamplerConfig{Metrics: reg})
	s.Sample()

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"mp_runtime_heap_inuse_bytes",
		"mp_runtime_goroutines",
		"mp_runtime_gc_cycles_total",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("missing %s in exposition", name)
		}
	}
	snap := s.Snapshot()
	if snap["mp_runtime_goroutines"] < 1 {
		t.Fatalf("goroutine count %v", snap["mp_runtime_goroutines"])
	}
	if snap["mp_runtime_heap_inuse_bytes"] <= 0 {
		t.Fatalf("heap in use %v", snap["mp_runtime_heap_inuse_bytes"])
	}
	// GC pause quantiles resolve on every supported Go version (two
	// candidate names cover the 1.22 rename).
	if !strings.Contains(out, `mp_runtime_gc_pause_seconds{quantile="0.99"}`) {
		t.Errorf("missing gc pause quantile series:\n%s", out)
	}
}

func TestSamplerStartStopNoLeak(t *testing.T) {
	leakcheck.Check(t)
	s := NewSampler(SamplerConfig{Interval: 10 * time.Millisecond, Metrics: obs.NewRegistry()})
	s.Start(context.Background())
	time.Sleep(30 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent
	var nilS *Sampler
	nilS.Sample()
	nilS.Start(context.Background())
	nilS.Stop()
	if nilS.Snapshot() != nil {
		t.Fatal("nil sampler snapshot should be nil")
	}
}

func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 10, 80, 10},
		Buckets: []float64{0, 1, 2, 3, 4},
	}
	if q := histQuantile(h, 0.5); q != 3 {
		t.Fatalf("p50 = %v, want 3", q)
	}
	if q := histQuantile(h, 0.99); q != 4 {
		t.Fatalf("p99 = %v, want 4", q)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if q := histQuantile(empty, 0.5); q != 0 {
		t.Fatalf("empty = %v", q)
	}
}
