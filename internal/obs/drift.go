package obs

import (
	"sort"
	"sync"

	"metaprobe/internal/stats"
)

// DriftConfig tunes a DriftDetector. The zero value selects the
// defaults documented on each field.
type DriftConfig struct {
	// WindowSize bounds the sliding window of fresh observations kept
	// per (database, query type); older observations are evicted
	// first-in-first-out (default 64).
	WindowSize int
	// MinSamples is the number of window observations required before
	// the first test runs for a key (default 32).
	MinSamples int
	// Interval is how many new observations accumulate between
	// successive tests of one key once MinSamples is met (default 16).
	Interval int
	// Alpha is the KS p-value below which a test counts as drift
	// (default 0.005). Callers compare fresh observations quantized to
	// the ED's bin midpoints against a reference replicated from the
	// same midpoints, so both samples share one discrete support and
	// the discrete-data KS p-value errs conservative; the strict
	// default additionally absorbs APro's probe-selection bias.
	Alpha float64
}

// driftDefaults fills unset fields.
func (c DriftConfig) withDefaults() DriftConfig {
	if c.WindowSize <= 0 {
		c.WindowSize = 64
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.MinSamples > c.WindowSize {
		c.MinSamples = c.WindowSize
	}
	if c.Interval <= 0 {
		c.Interval = 16
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.005
	}
	return c
}

// DriftAlert reports one failed drift test: the fresh probe errors of
// one (database, query type) no longer look drawn from the trained
// error distribution.
type DriftAlert struct {
	// DB is the drifting database's name.
	DB string
	// QueryType is the query-type key ("2-term/high").
	QueryType string
	// Statistic is the KS distance between the fresh window and the
	// trained reference.
	Statistic float64
	// PValue is the KS p-value that fell below Alpha.
	PValue float64
	// Samples is the window size at test time.
	Samples int
}

// DriftStatus is the point-in-time state of one monitored key.
type DriftStatus struct {
	// DB and QueryType identify the key.
	DB, QueryType string
	// Samples is the current window occupancy.
	Samples int
	// Tests and Alerts count the KS tests run and the ones that failed.
	Tests, Alerts int64
	// LastStatistic and LastPValue report the most recent test (zero
	// until a first test runs).
	LastStatistic, LastPValue float64
}

// DriftDetector watches the error distributions learned by sample
// probing (Section 4 of the paper) for staleness. Every live probe
// APro issues reveals an actual relevancy and hence a fresh relative
// error (r − r̂)/r̂ for free; the detector keeps a bounded sliding
// window of those errors per (database, query type) and periodically
// runs the two-sample Kolmogorov–Smirnov test against a reference
// sample reconstructed from the trained ED. A failed test means the
// collection has drifted away from what the model was trained on —
// exactly the condition under which E[Cor] silently mis-calibrates —
// and raises a DriftAlert so callers can schedule re-probing or
// re-training (closing the paper's adaptive loop online).
//
// Keys without a registered reference are ignored, so sparsely trained
// query types (below the model's MinObservations) never produce noise.
// All methods are safe for concurrent use; a nil *DriftDetector is a
// valid disabled value.
type DriftDetector struct {
	cfg DriftConfig

	mu      sync.Mutex
	keys    map[driftKey]*driftWindow
	reg     *Registry
	onAlert func(DriftAlert)
}

// driftKey identifies one monitored stream.
type driftKey struct{ db, qtype string }

// driftWindow is the per-key sliding window plus test bookkeeping.
type driftWindow struct {
	ref       []float64
	buf       []float64
	next      int
	full      bool
	sinceTest int
	tests     int64
	alerts    int64
	lastStat  float64
	lastP     float64
}

// NewDriftDetector returns a detector with cfg (zero fields default).
func NewDriftDetector(cfg DriftConfig) *DriftDetector {
	return &DriftDetector{cfg: cfg.withDefaults(), keys: make(map[driftKey]*driftWindow)}
}

// Config returns the effective (defaulted) configuration.
func (d *DriftDetector) Config() DriftConfig { return d.cfg }

// SetMetrics binds a registry: alerts bump mp_ed_drift_alerts_total
// (per database), tests bump mp_ed_drift_tests_total, and each key's
// latest KS statistic and p-value are exported as gauges. Call before
// the first Observe; a nil registry disables metric export.
func (d *DriftDetector) SetMetrics(reg *Registry) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.reg = reg
	d.mu.Unlock()
	if reg != nil {
		reg.Help("mp_ed_drift_alerts_total", "Drift tests that rejected the trained error distribution, per database.")
		reg.Help("mp_ed_drift_tests_total", "KS drift tests run against trained error distributions.")
		reg.Help("mp_ed_drift_statistic", "Latest KS distance between fresh probe errors and the trained ED.")
		reg.Help("mp_ed_drift_pvalue", "Latest KS p-value of fresh probe errors against the trained ED.")
		reg.Counter("mp_ed_drift_tests_total", nil)
	}
}

// SetOnAlert installs the callback invoked (synchronously, on the
// probing goroutine) for every failed test. Callers that re-train or
// re-probe in response should hop to their own goroutine and debounce:
// a persistently drifted key re-alerts every Interval observations
// until its reference is refreshed with SetReference.
func (d *DriftDetector) SetOnAlert(fn func(DriftAlert)) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.onAlert = fn
	d.mu.Unlock()
}

// SetReference registers (or refreshes) the trained reference sample
// for one (database, query type) and resets that key's window and test
// cadence. The sample is kept as given (sorted internally); see
// core.ED.ReferenceSample for the canonical way to materialize one
// from a trained ED.
func (d *DriftDetector) SetReference(db, queryType string, sample []float64) {
	if d == nil || len(sample) == 0 {
		return
	}
	ref := append([]float64(nil), sample...)
	sort.Float64s(ref)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.keys[driftKey{db, queryType}] = &driftWindow{ref: ref, buf: make([]float64, 0, d.cfg.WindowSize)}
}

// Observe feeds one fresh observation for (database, query type): the
// relative error (r − r̂)/r̂ for relative-error types, or the absolute
// relevancy for the r̂ = 0 band — the same value space the matching ED
// was trained in. Observations for keys without a reference are
// dropped. When the window has at least MinSamples observations and
// Interval new ones arrived since the last test, the KS test runs
// inline (probes are remote round trips; a sort of ≤ WindowSize floats
// is noise next to one).
func (d *DriftDetector) Observe(db, queryType string, v float64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	w, ok := d.keys[driftKey{db, queryType}]
	if !ok {
		d.mu.Unlock()
		return
	}
	if len(w.buf) < d.cfg.WindowSize {
		w.buf = append(w.buf, v)
	} else {
		w.buf[w.next] = v
		w.full = true
	}
	w.next = (w.next + 1) % d.cfg.WindowSize
	w.sinceTest++
	if len(w.buf) < d.cfg.MinSamples || w.sinceTest < d.cfg.Interval {
		d.mu.Unlock()
		return
	}
	// Time to test: snapshot the state needed, run the KS test while
	// still holding the lock (cheap, keeps the bookkeeping atomic), and
	// only release before the callback.
	w.sinceTest = 0
	w.tests++
	res, err := stats.KolmogorovSmirnov(w.buf, w.ref)
	if err != nil {
		d.mu.Unlock()
		return
	}
	w.lastStat, w.lastP = res.Statistic, res.PValue
	reg, onAlert := d.reg, d.onAlert
	drifted := res.PValue < d.cfg.Alpha
	var alert DriftAlert
	if drifted {
		w.alerts++
		alert = DriftAlert{DB: db, QueryType: queryType, Statistic: res.Statistic, PValue: res.PValue, Samples: len(w.buf)}
	}
	d.mu.Unlock()

	if reg != nil {
		lbl := Labels{"db": db, "type": queryType}
		reg.Counter("mp_ed_drift_tests_total", nil).Inc()
		reg.Gauge("mp_ed_drift_statistic", lbl).Set(res.Statistic)
		reg.Gauge("mp_ed_drift_pvalue", lbl).Set(res.PValue)
		if drifted {
			reg.Counter("mp_ed_drift_alerts_total", Labels{"db": db}).Inc()
		}
	}
	if drifted && onAlert != nil {
		onAlert(alert)
	}
}

// Snapshot lists the state of every monitored key, sorted by (db,
// query type) for deterministic reports.
func (d *DriftDetector) Snapshot() []DriftStatus {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	out := make([]DriftStatus, 0, len(d.keys))
	for k, w := range d.keys {
		out = append(out, DriftStatus{
			DB: k.db, QueryType: k.qtype,
			Samples: len(w.buf), Tests: w.tests, Alerts: w.alerts,
			LastStatistic: w.lastStat, LastPValue: w.lastP,
		})
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].DB != out[j].DB {
			return out[i].DB < out[j].DB
		}
		return out[i].QueryType < out[j].QueryType
	})
	return out
}

// Alerts returns the total failed tests across all keys.
func (d *DriftDetector) Alerts() int64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int64
	for _, w := range d.keys {
		n += w.alerts
	}
	return n
}
