package obs

import (
	"runtime"
	"runtime/debug"
)

// RegisterBuildInfo exports the conventional mp_build_info gauge: a
// constant 1 whose labels carry the build identity — which binary,
// which module version (VCS stamp when built from a checkout), which
// Go toolchain, and which model snapshot format it speaks. Every
// binary that serves /metrics registers this so a scrape can tell
// fleet versions apart without shelling into the box.
func RegisterBuildInfo(reg *Registry, component, formatVersion string) {
	if reg == nil {
		return
	}
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				version = s.Value[:12]
			}
		}
	}
	reg.Help("mp_build_info", "Build identity of this binary; value is always 1.")
	reg.Gauge("mp_build_info", Labels{
		"component":      component,
		"version":        version,
		"go_version":     runtime.Version(),
		"format_version": formatVersion,
	}).Set(1)
}
