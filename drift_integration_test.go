package metaprobe

import (
	"strings"
	"testing"

	"metaprobe/internal/corpus"
	"metaprobe/internal/hidden"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
	"metaprobe/internal/textindex"
)

// TestDriftDetectionEndToEnd is the acceptance test for the drift
// monitor: live probes on an unchanged corpus must not alert, and the
// same workload after one database's content drifts (a specialty site
// growing ~10× in its own topic profile while the trained summaries
// and error model go stale — the experiments.DriftStudy scenario with
// volume rather than topic drift) must trip mp_ed_drift_alerts_total
// and Config.OnDrift naming the drifted database.
func TestDriftDetectionEndToEnd(t *testing.T) {
	world := corpus.HealthWorld()
	specs := corpus.HealthTestbed(0.01)[:6]
	tb, err := hidden.BuildTestbed(world, specs, 23)
	if err != nil {
		t.Fatal(err)
	}
	dbs := make([]Database, tb.Len())
	for i := range dbs {
		dbs[i] = tb.DB(i)
	}
	sums, err := ExactSummaries(dbs)
	if err != nil {
		t.Fatal(err)
	}
	var alerts []DriftAlert
	reg := NewMetrics()
	cfg := &Config{
		Metrics: reg,
		// Small window/interval so the fixed-size workload runs plenty
		// of KS tests in both phases; the window matches MinSamples so
		// phase-2 tests see fully post-drift samples rather than a
		// dilution of both phases.
		Drift:   &DriftConfig{WindowSize: 16, MinSamples: 16, Interval: 8},
		OnDrift: func(a DriftAlert) { alerts = append(alerts, a) },
	}
	ms, err := New(dbs, sums, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := queries.NewGenerator(world, queries.Config{})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := gen.TrainTest(stats.NewRNG(4), 150, 150, 60, 60)
	if err != nil {
		t.Fatal(err)
	}
	trainStrs := make([]string, len(train))
	for i, q := range train {
		trainStrs[i] = q.String()
	}
	if err := ms.Train(trainStrs); err != nil {
		t.Fatal(err)
	}

	// drive replays the workload with a high certainty threshold so
	// adaptive probing touches (and thus drift-samples) every database.
	drive := func() {
		t.Helper()
		for _, q := range test {
			if _, err := ms.SelectWithCertainty(q.String(), 2, Absolute, 0.99, -1); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase 1: unchanged corpus. Tests must run, alerts must not fire.
	drive()
	var tests, statusAlerts int64
	for _, s := range ms.DriftStatuses() {
		tests += s.Tests
		statusAlerts += s.Alerts
	}
	if tests == 0 {
		t.Fatal("no KS tests ran on the undrifted workload; drift windows never filled")
	}
	if len(alerts) != 0 || statusAlerts != 0 {
		t.Fatalf("undrifted corpus raised %d callback / %d status alerts: %+v", len(alerts), statusAlerts, alerts)
	}

	// The drift: NeuroBase gains ~10× its size in documents drawn from
	// its own topic profile — a volume burst that multiplies every
	// query's match count — while summaries and the error model stay
	// stale.
	const driftDB = "NeuroBase"
	dbIdx := tb.IndexOf(driftDB)
	if dbIdx < 0 {
		t.Fatalf("testbed lost %s", driftDB)
	}
	local, ok := tb.DB(dbIdx).(*hidden.Local)
	if !ok {
		t.Fatalf("%s is not a local database", driftDB)
	}
	driftSpec := corpus.DatabaseSpec{
		Name:            driftDB + "-drift",
		NumDocs:         local.Size() * 10,
		MeanDocLen:      25,
		TopicWeights:    map[string]float64{"neurology": 8, "mentalhealth": 2, "pharma": 1},
		ConceptAffinity: 0.48,
	}
	newDocs, err := world.Generate(driftSpec, stats.NewRNG(23).Fork(999))
	if err != nil {
		t.Fatal(err)
	}
	tok := textindex.DefaultTokenizer()
	for _, d := range newDocs {
		terms := make([]string, 0, len(d.Terms))
		for _, term := range d.Terms {
			terms = append(terms, tok.Tokenize(term)...)
		}
		local.Index().AddTerms(d.ID, terms)
		local.StoreText(d.ID, d.Text())
	}

	// Phase 2: same workload over the shifted corpus, twice, so every
	// sparse (database, query type) window fills with post-drift
	// samples.
	drive()
	drive()
	if len(alerts) == 0 {
		t.Fatal("drifted corpus raised no OnDrift alerts")
	}
	sawDrifted := false
	for _, a := range alerts {
		if a.DB == driftDB {
			sawDrifted = true
			if a.PValue >= ms.DriftConfig().Alpha {
				t.Errorf("alert p-value %v not below alpha %v", a.PValue, ms.DriftConfig().Alpha)
			}
		}
	}
	if !sawDrifted {
		t.Fatalf("no alert names the drifted database %s: %+v", driftDB, alerts)
	}
	var driftedStatusAlerts int64
	for _, s := range ms.DriftStatuses() {
		if s.DB == driftDB {
			driftedStatusAlerts += s.Alerts
		}
	}
	if driftedStatusAlerts == 0 {
		t.Errorf("DriftStatuses records no alerts for %s", driftDB)
	}

	// The alert counter must surface in the Prometheus exposition.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `mp_ed_drift_alerts_total{db="`+driftDB+`"}`) {
		t.Errorf("metrics output lacks mp_ed_drift_alerts_total for %s:\n%s", driftDB, grepLines(out, "mp_ed_drift"))
	}
	if !strings.Contains(out, "mp_ed_drift_tests_total") {
		t.Error("metrics output lacks mp_ed_drift_tests_total")
	}
}

// grepLines filters s to lines containing substr, for failure output.
func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
