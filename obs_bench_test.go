package metaprobe

import "testing"

// BenchmarkSelect measures the observability layer's cost on the hot
// selection path. The acceptance bar is that the disabled path (the
// default nil Metrics/Tracer config) stays within 2% of a build with
// no instrumentation at all — it performs exactly two nil pointer
// comparisons per Select (obsNow and observe both bail immediately),
// so compare the sub-benchmarks:
//
//	go test -bench BenchmarkSelect -benchtime 2s .
//
// "disabled" is the nil path; "metrics", "tracer" and "full" show what
// enabling each collector costs on top.
func BenchmarkSelect(b *testing.B) {
	ms, queries := buildTestMetasearcher(b)
	configs := []struct {
		name    string
		metrics *Metrics
		tracer  Tracer
	}{
		{"disabled", nil, nil},
		{"metrics", NewMetrics(), nil},
		{"tracer", nil, NewRingTracer(64)},
		{"full", NewMetrics(), NewRingTracer(64)},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			ms.cfg.Metrics = cfg.metrics
			ms.cfg.Tracer = cfg.tracer
			defer func() {
				ms.cfg.Metrics = nil
				ms.cfg.Tracer = nil
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ms.Select(queries[i%len(queries)], 2, Absolute); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSelectWithCertainty covers the probing path, where the
// per-step trace bookkeeping lives.
func BenchmarkSelectWithCertainty(b *testing.B) {
	ms, queries := buildTestMetasearcher(b)
	for _, enabled := range []bool{false, true} {
		name := "disabled"
		if enabled {
			name = "full"
			ms.cfg.Metrics = NewMetrics()
			ms.cfg.Tracer = NewRingTracer(64)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ms.SelectWithCertainty(queries[i%len(queries)], 2, Absolute, 0.9, -1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	ms.cfg.Metrics = nil
	ms.cfg.Tracer = nil
}
