package metaprobe

import (
	"context"
	"strings"
	"testing"

	"metaprobe/internal/obs/span"
)

// TestSelectionSpanTreeExemplarAndSLO drives one traced selection end
// to end through the public API: the result carries a trace ID whose
// recorded tree is rooted at a "selection" span with probe children,
// the latency histogram's exposition carries an exemplar naming that
// trace, the SLO tracker counted the request, and the cost summary
// accounts for the probes spent.
func TestSelectionSpanTreeExemplarAndSLO(t *testing.T) {
	ms, queries := buildTestMetasearcher(t)
	reg := NewMetrics()
	tracer := NewSpanTracer(256)
	ms.cfg.Metrics = reg
	ms.cfg.Spans = tracer
	ms.cfg.SLO = NewSLO(SLOConfig{})

	res, err := ms.SelectWithCertaintyContext(context.Background(), queries[0], 2, Partial, 0.95, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("traced selection returned no trace ID")
	}

	roots := tracer.Tree(res.TraceID)
	if len(roots) != 1 || roots[0].Span.Name != "selection" {
		t.Fatalf("trace %s: got %d recorded roots, want the selection span", res.TraceID, len(roots))
	}
	root := roots[0].Span
	if root.Attrs["query"] != queries[0] {
		t.Errorf("root query attr = %q, want %q", root.Attrs["query"], queries[0])
	}
	probeSpans := 0
	for _, n := range span.Flatten(roots) {
		if n.Span.Name == "probe" {
			probeSpans++
			if n.Span.ParentID != root.SpanID {
				t.Errorf("probe span parented to %q, want root %q", n.Span.ParentID, root.SpanID)
			}
		}
	}
	if probeSpans != res.Probes {
		t.Errorf("trace holds %d probe spans, result reports %d probes", probeSpans, res.Probes)
	}

	if res.Cost == nil {
		t.Fatal("traced selection returned no cost summary")
	}
	if res.Probes > 0 && res.Cost.ProbesIssued < res.Probes {
		t.Errorf("cost accounts %d issued probes, result reports %d", res.Cost.ProbesIssued, res.Probes)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := `# {trace_id="` + res.TraceID + `"}`; !strings.Contains(sb.String(), want) {
		t.Errorf("latency exposition carries no exemplar for trace %s:\n%s", res.TraceID, sb.String())
	}

	if snap := ms.cfg.SLO.Snapshot(); snap.Total != 1 {
		t.Errorf("SLO tracker counted %d requests, want 1", snap.Total)
	}
}

// TestReady covers the readiness check's trained gate; the wedged-
// refresher arm is exercised by the refresh package's streak tests.
func TestReady(t *testing.T) {
	ms, _ := buildTestMetasearcher(t)
	if err := ms.Ready(); err != nil {
		t.Errorf("trained metasearcher not ready: %v", err)
	}
	var untrained Metasearcher
	if err := untrained.Ready(); err == nil || !strings.Contains(err.Error(), "not trained") {
		t.Errorf("untrained Ready() = %v, want not-trained error", err)
	}
}
