module metaprobe

go 1.22
